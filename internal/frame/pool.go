package frame

import (
	"fmt"
	"sync"
)

// Pool is a deterministic, explicitly sized free list of frames keyed by
// dimensions. It exists so the steady-state pipeline (one mux render, one
// display push, one capture, one decode per frame, forever) can run without
// allocating a single frame buffer after warmup: every stage Gets its
// working frames from a pool and Puts them back when its borrow ends.
//
// Design constraints, in order:
//
//   - Determinism. Get returns a zeroed frame, so a pooled run is
//     bit-identical to an unpooled one regardless of which recycled buffer
//     a Get happens to receive. No sync.Pool (its eviction is scheduler-
//     and GC-dependent) and no background goroutines (the repo-wide
//     goroutine lint invariant confines spawning to internal/parallel).
//   - Explicit sizing. The free list only ever holds frames that were Put;
//     nothing is preallocated speculatively and nothing is evicted behind
//     the caller's back. Retained memory = peak simultaneous borrows, which
//     the ownership rules in DESIGN.md §5e keep small and constant for a
//     single pipeline. Heterogeneous sharers (a fleet of receivers with
//     distinct capture geometries, each keying its own W×H list) bound the
//     union explicitly with SetMaxPerSize or release it with Trim, and the
//     HighWater accounting proves the bound held.
//   - Loud misuse. Put panics on a double Put or a corrupt frame
//     (dimension/buffer mismatch). Both are wiring bugs — the pooled
//     pipeline hands frames between stages, and silently aliasing one
//     frame into two owners corrupts output far from the bug.
//
// A nil *Pool is valid everywhere and disables pooling: Get falls back to
// New and Put drops the frame for the GC. This lets every pipeline stage
// take an optional pool without branching at call sites.
//
// Pool is safe for concurrent use. Gets, Puts and the free-list contents
// are deterministic for a deterministic caller sequence; under concurrent
// callers (e.g. parallel capture workers) the Hits/Misses split depends on
// interleaving, but outputs do not, because Get zeroes every frame it
// returns.
type Pool struct {
	mu     sync.Mutex
	free   map[[2]int][]*Frame
	pooled map[*Frame]struct{} // frames currently in the free list
	stats  PoolStats
	// maxPerSize caps each size key's free list; 0 = unbounded. Puts
	// arriving at a full list drop the frame (counted in stats.Evicted).
	maxPerSize int
	// pix is the pixel count currently resident in the free lists; high is
	// its peak alongside the peak resident frame count. Together they are
	// the pool's memory high-water: under heterogeneous borrowers (a fleet
	// of receivers with distinct capture geometries) every distinct W×H
	// keys its own list, and without a cap the union grows without bound.
	pix  int64
	high PoolHighWater
}

// PoolStats counts pool traffic. Gets and Puts are exact call counts; Hits
// are Gets served from the free list, Misses are Gets that allocated.
// Evicted counts Puts dropped by the per-size cap (the frame went to the
// GC instead of the free list). Under concurrent Gets the Hit/Miss split
// depends on interleaving; the totals do not.
type PoolStats struct {
	Gets, Puts, Hits, Misses, Evicted uint64
}

// PoolHighWater is the peak free-list residency observed so far: the
// maximum number of frames (and their total pixel count) that sat in the
// pool at once. It measures retained memory, not traffic — a fleet run
// whose high-water stays flat as receivers are added proves the free lists
// are bounded.
type PoolHighWater struct {
	Frames int
	Pixels int64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		free:   make(map[[2]int][]*Frame),
		pooled: make(map[*Frame]struct{}),
	}
}

// Get returns a zeroed w×h frame, reusing a previously Put frame of the
// same dimensions when one is free. It panics if either dimension is
// non-positive, matching New. A nil pool allocates.
func (p *Pool) Get(w, h int) *Frame {
	if p == nil {
		return New(w, h)
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame.Pool.Get: invalid size %dx%d", w, h))
	}
	p.mu.Lock()
	p.stats.Gets++
	key := [2]int{w, h}
	if list := p.free[key]; len(list) > 0 {
		f := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		delete(p.pooled, f)
		p.pix -= int64(len(f.Pix))
		p.stats.Hits++
		p.mu.Unlock()
		// Zero outside the lock: the frame is exclusively ours now, and
		// the memclr is the expensive part. Zeroing is what makes pooled
		// and fresh runs bit-identical.
		fillPix(f.Pix, 0)
		return f
	}
	p.stats.Misses++
	p.mu.Unlock()
	return New(w, h)
}

// Put returns f to the free list for reuse by a later Get of the same
// dimensions. Frames from any source are adopted, not just ones this pool
// handed out. Put panics if f is already in the free list (double Put: two
// owners of one buffer) or if f's buffer does not match its dimensions
// (corruption or a hand-built Frame). A nil pool, or a nil f, is a no-op.
// When a per-size cap is set (SetMaxPerSize) and f's size list is already
// full, the frame is dropped for the GC instead of retained, and the drop
// is counted in the Evicted statistic — semantically identical to a nil
// pool's Put, so callers never branch on whether their Put "stuck".
func (p *Pool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	if f.W <= 0 || f.H <= 0 || len(f.Pix) != f.W*f.H {
		panic(fmt.Sprintf("frame.Pool.Put: corrupt frame %dx%d with %d pixels", f.W, f.H, len(f.Pix)))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.pooled[f]; dup {
		panic("frame.Pool.Put: double Put (frame is already in the pool)")
	}
	p.stats.Puts++
	key := [2]int{f.W, f.H}
	if p.maxPerSize > 0 && len(p.free[key]) >= p.maxPerSize {
		p.stats.Evicted++
		return
	}
	p.pooled[f] = struct{}{}
	p.free[key] = append(p.free[key], f)
	p.pix += int64(len(f.Pix))
	if n := len(p.pooled); n > p.high.Frames {
		p.high.Frames = n
	}
	if p.pix > p.high.Pixels {
		p.high.Pixels = p.pix
	}
}

// SetMaxPerSize caps every size key's free list at n frames; 0 restores the
// unbounded default. The cap applies immediately: existing lists longer
// than n are trimmed (trimmed frames count as Evicted), and subsequent Puts
// into a full list drop their frame. Determinism is unaffected — Get still
// zeroes every frame it returns, so whether a particular buffer was
// retained or evicted can never reach the pixel data.
func (p *Pool) SetMaxPerSize(n int) {
	if p == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("frame.Pool.SetMaxPerSize: negative cap %d", n))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxPerSize = n
	if n > 0 {
		p.trimLocked(n)
	}
}

// Trim evicts free-list frames so no size key retains more than perSize
// frames, returning how many were dropped. Unlike SetMaxPerSize it is a
// one-shot release — the standing cap is unchanged, so a fleet can Trim
// between waves without capping steady-state reuse inside a wave. Trim(0)
// empties the pool. A nil pool trims nothing.
func (p *Pool) Trim(perSize int) int {
	if p == nil {
		return 0
	}
	if perSize < 0 {
		panic(fmt.Sprintf("frame.Pool.Trim: negative cap %d", perSize))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.trimLocked(perSize)
}

// trimLocked drops frames beyond perSize per size key; callers hold mu.
// Eviction takes the oldest entries (the front of each list), keeping the
// most recently Put — and therefore most cache-warm — frames available.
// The eviction count is order-independent, so iterating the free map here
// feeds no ordered output.
func (p *Pool) trimLocked(perSize int) int {
	evicted := 0
	for key, list := range p.free {
		if len(list) <= perSize {
			continue
		}
		drop := list[:len(list)-perSize]
		for _, f := range drop {
			delete(p.pooled, f)
			p.pix -= int64(len(f.Pix))
			evicted++
		}
		keep := list[len(list)-perSize:]
		if perSize == 0 {
			delete(p.free, key)
		} else {
			p.free[key] = append(list[:0], keep...)
		}
	}
	p.stats.Evicted += uint64(evicted)
	return evicted
}

// HighWater returns the peak free-list residency (frames and pixels) seen
// so far. A nil pool reports zero.
func (p *Pool) HighWater() PoolHighWater {
	if p == nil {
		return PoolHighWater{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.high
}

// Stats returns a snapshot of the pool's counters. Stats on a nil pool is
// a zero snapshot.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns how many frames are currently sitting in the free list.
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pooled)
}
