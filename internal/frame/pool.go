package frame

import (
	"fmt"
	"sync"
)

// Pool is a deterministic, explicitly sized free list of frames keyed by
// dimensions. It exists so the steady-state pipeline (one mux render, one
// display push, one capture, one decode per frame, forever) can run without
// allocating a single frame buffer after warmup: every stage Gets its
// working frames from a pool and Puts them back when its borrow ends.
//
// Design constraints, in order:
//
//   - Determinism. Get returns a zeroed frame, so a pooled run is
//     bit-identical to an unpooled one regardless of which recycled buffer
//     a Get happens to receive. No sync.Pool (its eviction is scheduler-
//     and GC-dependent) and no background goroutines (the repo-wide
//     goroutine lint invariant confines spawning to internal/parallel).
//   - Explicit sizing. The free list only ever holds frames that were Put;
//     nothing is preallocated speculatively and nothing is evicted. Memory
//     high-water = peak simultaneous borrows, which the ownership rules in
//     DESIGN.md §5e keep small and constant.
//   - Loud misuse. Put panics on a double Put or a corrupt frame
//     (dimension/buffer mismatch). Both are wiring bugs — the pooled
//     pipeline hands frames between stages, and silently aliasing one
//     frame into two owners corrupts output far from the bug.
//
// A nil *Pool is valid everywhere and disables pooling: Get falls back to
// New and Put drops the frame for the GC. This lets every pipeline stage
// take an optional pool without branching at call sites.
//
// Pool is safe for concurrent use. Gets, Puts and the free-list contents
// are deterministic for a deterministic caller sequence; under concurrent
// callers (e.g. parallel capture workers) the Hits/Misses split depends on
// interleaving, but outputs do not, because Get zeroes every frame it
// returns.
type Pool struct {
	mu     sync.Mutex
	free   map[[2]int][]*Frame
	pooled map[*Frame]struct{} // frames currently in the free list
	stats  PoolStats
}

// PoolStats counts pool traffic. Gets and Puts are exact call counts; Hits
// are Gets served from the free list, Misses are Gets that allocated.
// Under concurrent Gets the Hit/Miss split depends on interleaving; the
// totals do not.
type PoolStats struct {
	Gets, Puts, Hits, Misses uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		free:   make(map[[2]int][]*Frame),
		pooled: make(map[*Frame]struct{}),
	}
}

// Get returns a zeroed w×h frame, reusing a previously Put frame of the
// same dimensions when one is free. It panics if either dimension is
// non-positive, matching New. A nil pool allocates.
func (p *Pool) Get(w, h int) *Frame {
	if p == nil {
		return New(w, h)
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame.Pool.Get: invalid size %dx%d", w, h))
	}
	p.mu.Lock()
	p.stats.Gets++
	key := [2]int{w, h}
	if list := p.free[key]; len(list) > 0 {
		f := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		delete(p.pooled, f)
		p.stats.Hits++
		p.mu.Unlock()
		// Zero outside the lock: the frame is exclusively ours now, and
		// the memclr is the expensive part. Zeroing is what makes pooled
		// and fresh runs bit-identical.
		fillPix(f.Pix, 0)
		return f
	}
	p.stats.Misses++
	p.mu.Unlock()
	return New(w, h)
}

// Put returns f to the free list for reuse by a later Get of the same
// dimensions. Frames from any source are adopted, not just ones this pool
// handed out. Put panics if f is already in the free list (double Put: two
// owners of one buffer) or if f's buffer does not match its dimensions
// (corruption or a hand-built Frame). A nil pool, or a nil f, is a no-op.
func (p *Pool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	if f.W <= 0 || f.H <= 0 || len(f.Pix) != f.W*f.H {
		panic(fmt.Sprintf("frame.Pool.Put: corrupt frame %dx%d with %d pixels", f.W, f.H, len(f.Pix)))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.pooled[f]; dup {
		panic("frame.Pool.Put: double Put (frame is already in the pool)")
	}
	p.pooled[f] = struct{}{}
	key := [2]int{f.W, f.H}
	p.free[key] = append(p.free[key], f)
	p.stats.Puts++
}

// Stats returns a snapshot of the pool's counters. Stats on a nil pool is
// a zero snapshot.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns how many frames are currently sitting in the free list.
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pooled)
}
