package frame

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
)

// ToImage converts f to an 8-bit grayscale image, clamping to [0,255].
func ToImage(f *Frame) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		row := f.Pix[y*f.W : (y+1)*f.W]
		out := img.Pix[y*img.Stride : y*img.Stride+f.W]
		for x, v := range row {
			out[x] = Quant8(v)
		}
	}
	return img
}

// FromImage converts any image to a luminance frame using the Rec. 601
// weights applied by the standard library's color conversion.
func FromImage(img image.Image) *Frame {
	b := img.Bounds()
	f := New(b.Dx(), b.Dy())
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			g := color.GrayModel.Convert(img.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			f.Pix[y*f.W+x] = float32(g.Y)
		}
	}
	return f
}

// EncodePNG writes f as a grayscale PNG.
func EncodePNG(w io.Writer, f *Frame) error {
	return png.Encode(w, ToImage(f))
}

// DecodePNG reads a PNG (any color model) into a luminance frame.
func DecodePNG(r io.Reader) (*Frame, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("frame: decoding png: %w", err)
	}
	return FromImage(img), nil
}

// WritePNG saves f as a grayscale PNG at path.
func WritePNG(path string, f *Frame) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("frame: creating %s: %w", path, err)
	}
	defer fh.Close()
	if err := EncodePNG(fh, f); err != nil {
		return fmt.Errorf("frame: encoding %s: %w", path, err)
	}
	return fh.Close()
}

// ReadPNG loads the PNG at path into a luminance frame.
func ReadPNG(path string) (*Frame, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("frame: opening %s: %w", path, err)
	}
	defer fh.Close()
	return DecodePNG(fh)
}
