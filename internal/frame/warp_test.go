package frame

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randQuad returns a seeded non-degenerate convex quad: a w×h rectangle
// whose corners are jittered by strictly less than a quarter of the short
// side, so each corner stays in its own quadrant and no three can turn
// collinear.
func randQuad(rng *rand.Rand, w, h float64) [4][2]float64 {
	j := 0.24 * math.Min(w, h)
	base := [4][2]float64{{0, 0}, {w, 0}, {w, h}, {0, h}}
	for i := range base {
		base[i][0] += (2*rng.Float64() - 1) * j
		base[i][1] += (2*rng.Float64() - 1) * j
	}
	return base
}

// randHomography returns a seeded well-conditioned ground-truth map: an
// axis-aligned core with mild rotation/shear and small perspective terms.
func randHomography(rng *rand.Rand) Homography {
	return Homography{M: [9]float64{
		0.5 + rng.Float64(), (rng.Float64() - 0.5) * 0.2, (rng.Float64() - 0.5) * 40,
		(rng.Float64() - 0.5) * 0.2, 0.5 + rng.Float64(), (rng.Float64() - 0.5) * 40,
		(rng.Float64() - 0.5) * 1e-3, (rng.Float64() - 0.5) * 1e-3, 1,
	}}
}

// TestSolveHomographyRoundTrip pins the property pack's core guarantee: for
// seeded random non-degenerate quads, projecting a rectangle's corners
// through a ground-truth map and solving from the four correspondences
// recovers the map — not just at the corners, but at a grid of interior and
// exterior probe points.
func TestSolveHomographyRoundTrip(t *testing.T) {
	src := [4][2]float64{{0, 0}, {112, 0}, {112, 72}, {0, 72}}
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		want := randHomography(rng)
		var dst [4][2]float64
		for i, p := range src {
			x, y, ok := want.Apply(p[0], p[1])
			if !ok {
				t.Fatalf("seed %d: ground-truth map degenerate at corner %d", seed, i)
			}
			dst[i] = [2]float64{x, y}
		}
		got, err := SolveHomography(src, dst)
		if err != nil {
			t.Fatalf("seed %d: solve failed: %v", seed, err)
		}
		for px := -20.0; px <= 140; px += 20 {
			for py := -20.0; py <= 90; py += 15 {
				wx, wy, ok1 := want.Apply(px, py)
				gx, gy, ok2 := got.Apply(px, py)
				if !ok1 || !ok2 {
					t.Fatalf("seed %d: probe (%v,%v) hit a horizon", seed, px, py)
				}
				if math.Abs(wx-gx) > 1e-6 || math.Abs(wy-gy) > 1e-6 {
					t.Fatalf("seed %d: probe (%v,%v): got (%v,%v), want (%v,%v)",
						seed, px, py, gx, gy, wx, wy)
				}
			}
		}
	}
}

// TestSolveHomographyCorners checks the solve interpolates its defining
// correspondences for seeded random quads on both sides.
func TestSolveHomographyCorners(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		src := randQuad(rng, 112, 72)
		dst := randQuad(rng, 160, 90)
		h, err := SolveHomography(src, dst)
		if err != nil {
			t.Fatalf("seed %d: solve failed: %v", seed, err)
		}
		for i := range src {
			x, y, ok := h.Apply(src[i][0], src[i][1])
			if !ok {
				t.Fatalf("seed %d: corner %d on horizon", seed, i)
			}
			if math.Abs(x-dst[i][0]) > 1e-6 || math.Abs(y-dst[i][1]) > 1e-6 {
				t.Fatalf("seed %d: corner %d maps to (%v,%v), want (%v,%v)",
					seed, i, x, y, dst[i][0], dst[i][1])
			}
		}
	}
}

// TestHomographyInvertComposition: H·H⁻¹ ≈ I for seeded random maps, up to
// the shared projective scale.
func TestHomographyInvertComposition(t *testing.T) {
	id := IdentityHomography()
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		h := randHomography(rng)
		inv, err := h.Invert()
		if err != nil {
			t.Fatalf("seed %d: invert failed: %v", seed, err)
		}
		prod := h.Mul(inv)
		s := prod.M[8]
		if math.Abs(s) < 1e-12 {
			t.Fatalf("seed %d: product has vanishing scale", seed)
		}
		for i, v := range prod.M {
			if math.Abs(v/s-id.M[i]) > 1e-9 {
				t.Fatalf("seed %d: (H·H⁻¹)[%d] = %v, want %v", seed, i, v/s, id.M[i])
			}
		}
	}
}

// TestSolveHomographyDegenerate pins the typed rejection: collinear,
// coincident and non-finite corner sets return ErrDegenerateQuad.
func TestSolveHomographyDegenerate(t *testing.T) {
	good := [4][2]float64{{0, 0}, {100, 0}, {100, 60}, {0, 60}}
	cases := []struct {
		name string
		pts  [4][2]float64
	}{
		{"collinear", [4][2]float64{{0, 0}, {10, 10}, {20, 20}, {30, 30}}},
		{"three-collinear", [4][2]float64{{0, 0}, {10, 0}, {20, 0}, {5, 30}}},
		{"coincident", [4][2]float64{{5, 5}, {5, 5}, {100, 60}, {0, 60}}},
		{"all-equal", [4][2]float64{{7, 7}, {7, 7}, {7, 7}, {7, 7}}},
		{"nan", [4][2]float64{{math.NaN(), 0}, {100, 0}, {100, 60}, {0, 60}}},
		{"inf", [4][2]float64{{math.Inf(1), 0}, {100, 0}, {100, 60}, {0, 60}}},
	}
	for _, tc := range cases {
		if _, err := SolveHomography(good, tc.pts); !errors.Is(err, ErrDegenerateQuad) {
			t.Errorf("%s as dst: err = %v, want ErrDegenerateQuad", tc.name, err)
		}
		if _, err := SolveHomography(tc.pts, good); !errors.Is(err, ErrDegenerateQuad) {
			t.Errorf("%s as src: err = %v, want ErrDegenerateQuad", tc.name, err)
		}
	}
}

// TestAxisAligned pins the frontal fast-path trigger: exact for affine
// axis-aligned maps (including non-unit projective scale), rejected for any
// rotation, shear or perspective term.
func TestAxisAligned(t *testing.T) {
	sx, sy, ox, oy, ok := AxisAlignedHomography(2, 0.5, 10, -4).AxisAligned()
	if !ok || sx != 2 || sy != 0.5 || ox != 10 || oy != -4 {
		t.Fatalf("axis-aligned map not recovered: %v %v %v %v %v", sx, sy, ox, oy, ok)
	}
	scaled := Homography{M: [9]float64{4, 0, 20, 0, 1, -8, 0, 0, 2}}
	sx, sy, ox, oy, ok = scaled.AxisAligned()
	if !ok || sx != 2 || sy != 0.5 || ox != 10 || oy != -4 {
		t.Fatalf("scaled axis-aligned map not normalized: %v %v %v %v %v", sx, sy, ox, oy, ok)
	}
	reject := []Homography{
		{M: [9]float64{2, 1e-9, 0, 0, 2, 0, 0, 0, 1}},  // shear
		{M: [9]float64{2, 0, 0, 0, 2, 0, 1e-12, 0, 1}}, // perspective
		{M: [9]float64{-2, 0, 0, 0, 2, 0, 0, 0, 1}},    // mirrored
		{M: [9]float64{2, 0, 0, 0, 2, 0, 0, 0, 0}},     // vanishing scale
	}
	for i, h := range reject {
		if _, _, _, _, ok := h.AxisAligned(); ok {
			t.Errorf("map %d wrongly classified axis-aligned", i)
		}
	}
}

// TestWarpIntoIdentity: the identity map reproduces an integral source
// bit-exactly (the Q16 corner taps are exact), and a float source exactly
// too (weights collapse to the top-left tap).
func TestWarpIntoIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := New(33, 21)
	for i := range src.Pix {
		src.Pix[i] = float32(rng.Intn(256))
	}
	dst := New(33, 21)
	WarpInto(src, dst, IdentityHomography())
	if !src.Equal(dst) {
		t.Fatal("identity warp of integral source is not bit-identical")
	}
	for i := range src.Pix {
		src.Pix[i] += 0.25 // knock the source off the integer lattice
	}
	WarpInto(src, dst, IdentityHomography())
	if !src.Equal(dst) {
		t.Fatal("identity warp of float source is not bit-identical")
	}
}

// TestWarpIntegralMatchesFloat bounds the integer path's deviation from the
// float reference under a genuine projective map: Q16 weights quantize at
// 2⁻¹⁶, so on 8-bit magnitudes the paths agree to well under one LSB.
func TestWarpIntegralMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := New(64, 48)
	for i := range src.Pix {
		src.Pix[i] = float32(rng.Intn(256))
	}
	h, err := SolveHomography(
		[4][2]float64{{0, 0}, {63, 0}, {63, 47}, {0, 47}},
		[4][2]float64{{2, 1}, {60, 3}, {58, 44}, {1, 46}},
	)
	if err != nil {
		t.Fatal(err)
	}
	di := New(64, 48)
	df := New(64, 48)
	warpIntegral(src, di, h)
	warpFloat(src, df, h)
	for i := range di.Pix {
		if d := math.Abs(float64(di.Pix[i] - df.Pix[i])); d > 0.01 {
			t.Fatalf("pixel %d: integer %v vs float %v (Δ %v)", i, di.Pix[i], df.Pix[i], d)
		}
	}
}

// TestWarpIntoOutOfBounds: samples past the source read the black overscan.
func TestWarpIntoOutOfBounds(t *testing.T) {
	src := New(8, 8)
	for i := range src.Pix {
		src.Pix[i] = 200
	}
	dst := New(8, 8)
	// Shift far off the source: every sample lands outside.
	WarpInto(src, dst, AxisAlignedHomography(1, 1, 100, 100))
	for i, v := range dst.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %v, want 0 (overscan)", i, v)
		}
	}
}

// TestWarpIntoAliasPanics pins the no-alias contract.
func TestWarpIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("aliased WarpInto did not panic")
		}
	}()
	f := New(4, 4)
	WarpInto(f, f, IdentityHomography())
}

// FuzzWarpInto shakes the warp with arbitrary pixel content and arbitrary
// (including non-finite and degenerate) homography entries: it must never
// panic, index out of range, or emit a non-finite sample from finite input.
func FuzzWarpInto(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(4), uint8(4), int64(1),
		1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0)
	f.Add(uint8(16), uint8(2), uint8(3), uint8(9), int64(2),
		0.5, 0.1, -3.0, -0.1, 2.0, 4.0, 1e-3, -1e-3, 1.0)
	f.Add(uint8(5), uint8(5), uint8(5), uint8(5), int64(3),
		math.NaN(), math.Inf(1), 0.0, 0.0, math.Inf(-1), 0.0, 0.0, 0.0, 0.0)
	f.Add(uint8(3), uint8(7), uint8(7), uint8(3), int64(4),
		1e300, -1e300, 1e-300, 0.0, 5e299, 0.0, 1.0, 1.0, 1e-300)
	f.Fuzz(func(t *testing.T, sw, sh, dw, dh uint8, seed int64,
		m0, m1, m2, m3, m4, m5, m6, m7, m8 float64) {
		srcW, srcH := int(sw%64)+1, int(sh%64)+1
		dstW, dstH := int(dw%64)+1, int(dh%64)+1
		rng := rand.New(rand.NewSource(seed))
		src := New(srcW, srcH)
		integral := seed%2 == 0
		for i := range src.Pix {
			if integral {
				src.Pix[i] = float32(rng.Intn(256))
			} else {
				src.Pix[i] = float32(rng.Float64()*300 - 20)
			}
		}
		dst := New(dstW, dstH)
		h := Homography{M: [9]float64{m0, m1, m2, m3, m4, m5, m6, m7, m8}}
		WarpInto(src, dst, h)
		for i, v := range dst.Pix {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("pixel %d is non-finite (%v) from finite input", i, v)
			}
		}
	})
}
