package frame

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randomRGB(seed int64, w, h int) *RGB {
	rng := rand.New(rand.NewSource(seed))
	f := NewRGB(w, h)
	for i := range f.R {
		f.R[i] = float32(rng.Intn(256))
		f.G[i] = float32(rng.Intn(256))
		f.B[i] = float32(rng.Intn(256))
	}
	return f
}

func TestNewRGBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRGB(0,1) did not panic")
		}
	}()
	NewRGB(0, 1)
}

func TestRGBAtSetClone(t *testing.T) {
	f := NewRGBFilled(4, 3, 10, 20, 30)
	r, g, b := f.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("At = %v,%v,%v", r, g, b)
	}
	f.Set(2, 1, 1, 2, 3)
	if r, _, _ := f.At(2, 1); r != 1 {
		t.Fatal("Set failed")
	}
	cl := f.Clone()
	cl.Set(0, 0, 9, 9, 9)
	if r, _, _ := f.At(0, 0); r == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestRGBClamp(t *testing.T) {
	f := NewRGBFilled(2, 2, -5, 100, 300)
	f.Clamp(0, 255)
	r, g, b := f.At(0, 0)
	if r != 0 || g != 100 || b != 255 {
		t.Fatalf("Clamp = %v,%v,%v", r, g, b)
	}
}

func TestLumaWeights(t *testing.T) {
	f := NewRGBFilled(1, 1, 255, 0, 0)
	if y := f.Luma().At(0, 0); math.Abs(float64(y)-0.299*255) > 1e-3 {
		t.Fatalf("red luma = %v", y)
	}
	white := NewRGBFilled(1, 1, 255, 255, 255)
	if y := white.Luma().At(0, 0); math.Abs(float64(y)-255) > 1e-3 {
		t.Fatalf("white luma = %v", y)
	}
}

// TestAddLumaDeltaPreservesChroma: the paper's equal-channel embedding
// shifts Y exactly and leaves Cb/Cr untouched (away from clipping).
func TestAddLumaDeltaPreservesChroma(t *testing.T) {
	f := NewRGBFilled(4, 4, 120, 80, 160)
	_, cb0, cr0 := f.YCbCr()
	y0 := f.Luma()
	d := NewFilled(4, 4, 20)
	if err := f.AddLumaDelta(d); err != nil {
		t.Fatal(err)
	}
	y1, cb1, cr1 := f.YCbCr()
	if math.Abs(float64(y1.At(1, 1)-y0.At(1, 1))-20) > 1e-3 {
		t.Fatalf("luma shift = %v, want 20", y1.At(1, 1)-y0.At(1, 1))
	}
	if math.Abs(float64(cb1.At(1, 1)-cb0.At(1, 1))) > 1e-3 ||
		math.Abs(float64(cr1.At(1, 1)-cr0.At(1, 1))) > 1e-3 {
		t.Fatal("chroma drifted under luma-only delta")
	}
}

func TestAddLumaDeltaSizeCheck(t *testing.T) {
	f := NewRGB(2, 2)
	if err := f.AddLumaDelta(New(3, 3)); err != ErrSizeMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestFromLuma(t *testing.T) {
	y := NewFilled(3, 3, 77)
	f := FromLuma(y)
	r, g, b := f.At(1, 1)
	if r != 77 || g != 77 || b != 77 {
		t.Fatalf("FromLuma = %v,%v,%v", r, g, b)
	}
	if math.Abs(float64(f.Luma().At(1, 1))-77) > 1e-3 {
		t.Fatal("gray round trip broke luma")
	}
}

// TestYCbCrRoundTrip: RGB → YCbCr → RGB is near-identity.
func TestYCbCrRoundTrip(t *testing.T) {
	f := randomRGB(3, 8, 8)
	y, cb, cr := f.YCbCr()
	back, err := RGBFromYCbCr(y, cb, cr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.R {
		if math.Abs(float64(f.R[i]-back.R[i])) > 0.01 ||
			math.Abs(float64(f.G[i]-back.G[i])) > 0.01 ||
			math.Abs(float64(f.B[i]-back.B[i])) > 0.01 {
			t.Fatalf("pixel %d: (%v,%v,%v) -> (%v,%v,%v)",
				i, f.R[i], f.G[i], f.B[i], back.R[i], back.G[i], back.B[i])
		}
	}
}

func TestYCbCrGrayIsNeutral(t *testing.T) {
	prop := func(level uint8) bool {
		f := NewRGBFilled(1, 1, float32(level), float32(level), float32(level))
		y, cb, cr := f.YCbCr()
		return math.Abs(float64(y.At(0, 0))-float64(level)) < 1e-3 &&
			math.Abs(float64(cb.At(0, 0))-128) < 1e-3 &&
			math.Abs(float64(cr.At(0, 0))-128) < 1e-3
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRGBFromYCbCrSizeCheck(t *testing.T) {
	if _, err := RGBFromYCbCr(New(2, 2), New(3, 3), New(2, 2)); err != ErrSizeMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestRGBPNGRoundTrip(t *testing.T) {
	f := randomRGB(7, 10, 6)
	var buf bytes.Buffer
	if err := EncodePNGRGB(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNGRGB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.R {
		if f.R[i] != back.R[i] || f.G[i] != back.G[i] || f.B[i] != back.B[i] {
			t.Fatalf("pixel %d changed", i)
		}
	}
}

func TestRGBPNGFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.png")
	f := NewRGBFilled(4, 4, 10, 200, 90)
	if err := WritePNGRGB(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNGRGB(path)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := back.At(2, 2)
	if r != 10 || g != 200 || b != 90 {
		t.Fatalf("file round trip = %v,%v,%v", r, g, b)
	}
	if _, err := ReadPNGRGB(filepath.Join(t.TempDir(), "missing.png")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestDecodePNGRGBGarbage(t *testing.T) {
	if _, err := DecodePNGRGB(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestAddLumaDeltaOfMatchesCloneAdd: the fused render helper must be
// bit-identical to Clone + AddLumaDelta even when the delta drives channels
// through both clamp edges.
func TestAddLumaDeltaOfMatchesCloneAdd(t *testing.T) {
	src := randomRGB(21, 9, 7)
	d := New(9, 7)
	deltas := []float32{0, 20, 255, 300, 0.5, 127.25, 1.0 / 3}
	for i := range d.Pix {
		d.Pix[i] = deltas[i%len(deltas)]
	}
	for _, sign := range []float32{1, -1} {
		want := src.Clone()
		signed := New(9, 7)
		for i, dv := range d.Pix {
			signed.Pix[i] = sign * dv
		}
		if err := want.AddLumaDelta(signed); err != nil {
			t.Fatal(err)
		}
		got := NewRGB(9, 7)
		if err := got.AddLumaDeltaOf(src, d, sign); err != nil {
			t.Fatal(err)
		}
		for i := range want.R {
			if got.R[i] != want.R[i] || got.G[i] != want.G[i] || got.B[i] != want.B[i] {
				t.Fatalf("sign %v pixel %d: fused (%v,%v,%v), reference (%v,%v,%v)", sign, i,
					got.R[i], got.G[i], got.B[i], want.R[i], want.G[i], want.B[i])
			}
		}
		luma, err := src.LumaShifted(d, sign)
		if err != nil {
			t.Fatal(err)
		}
		if !luma.Equal(want.Luma()) {
			t.Fatalf("sign %v: LumaShifted diverges from Luma of the clamped RGB", sign)
		}
	}
}

func TestAddLumaDeltaOfSizeCheck(t *testing.T) {
	if err := NewRGB(4, 4).AddLumaDeltaOf(NewRGB(4, 4), New(3, 4), 1); err != ErrSizeMismatch {
		t.Fatalf("mismatched delta: got %v, want ErrSizeMismatch", err)
	}
	if err := NewRGB(4, 4).AddLumaDeltaOf(NewRGB(5, 4), New(4, 4), 1); err != ErrSizeMismatch {
		t.Fatalf("mismatched source: got %v, want ErrSizeMismatch", err)
	}
	if _, err := NewRGB(4, 4).LumaShifted(New(3, 4), 1); err != ErrSizeMismatch {
		t.Fatalf("LumaShifted mismatched delta: got %v, want ErrSizeMismatch", err)
	}
}
