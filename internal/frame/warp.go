package frame

import (
	"errors"
	"fmt"
	"math"

	"inframe/internal/fixed"
)

// Homography is a 3×3 projective map between two pixel coordinate systems,
// stored row-major: a point (x, y) maps to
//
//	( (M0·x + M1·y + M2) / w, (M3·x + M4·y + M5) / w ),  w = M6·x + M7·y + M8.
//
// It generalizes CaptureMapping (internal/core) from axis-aligned affine to
// full perspective: the display→capture geometry of an off-axis camera
// (tilt, rotation, distance) is exactly a homography between the two planes.
// The type lives here, in the lowest shared layer, because the impair stack,
// the registration package and the receiver all consume it.
type Homography struct {
	M [9]float64
}

// ErrDegenerateQuad is returned by SolveHomography when the four source or
// destination corners are collinear, coincident, non-finite or otherwise do
// not span a proper quadrilateral.
var ErrDegenerateQuad = errors.New("frame: degenerate quad (collinear, coincident or non-finite corners)")

// ErrSingularHomography is returned by Invert when the matrix has no usable
// inverse.
var ErrSingularHomography = errors.New("frame: singular homography")

// IdentityHomography returns the identity map.
func IdentityHomography() Homography {
	return Homography{M: [9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}}
}

// AxisAlignedHomography lifts an axis-aligned affine map (the CaptureMapping
// form: x·sx+ox, y·sy+oy) into homography form.
func AxisAlignedHomography(sx, sy, ox, oy float64) Homography {
	return Homography{M: [9]float64{sx, 0, ox, 0, sy, oy, 0, 0, 1}}
}

// Apply maps one point. ok is false when the point sits on (or numerically
// at) the map's horizon line, where the projective denominator vanishes.
func (h Homography) Apply(x, y float64) (fx, fy float64, ok bool) {
	w := h.M[6]*x + h.M[7]*y + h.M[8]
	if !(math.Abs(w) > 1e-12) { // NaN-safe: a non-finite w also fails
		return 0, 0, false
	}
	inv := 1 / w
	return (h.M[0]*x + h.M[1]*y + h.M[2]) * inv, (h.M[3]*x + h.M[4]*y + h.M[5]) * inv, true
}

// Mul returns the composition h∘g as a map: (h.Mul(g)).Apply(p) equals
// h.Apply(g.Apply(p)) up to the shared projective scale.
func (h Homography) Mul(g Homography) Homography {
	var out Homography
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			out.M[3*r+c] = h.M[3*r]*g.M[c] + h.M[3*r+1]*g.M[3+c] + h.M[3*r+2]*g.M[6+c]
		}
	}
	return out
}

// Det returns the matrix determinant.
func (h Homography) Det() float64 {
	m := &h.M
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Invert returns the inverse map (the adjugate over the determinant), or
// ErrSingularHomography when the determinant is numerically zero relative to
// the matrix scale.
func (h Homography) Invert() (Homography, error) {
	m := &h.M
	det := h.Det()
	var norm float64
	for _, v := range m {
		norm += v * v
	}
	// The determinant scales with the cube of the matrix magnitude; compare
	// against norm^1.5 so the test is invariant to the projective scale.
	if !(math.Abs(det) > 1e-12*math.Pow(norm, 1.5)+1e-300) {
		return Homography{}, ErrSingularHomography
	}
	inv := 1 / det
	return Homography{M: [9]float64{
		(m[4]*m[8] - m[5]*m[7]) * inv,
		(m[2]*m[7] - m[1]*m[8]) * inv,
		(m[1]*m[5] - m[2]*m[4]) * inv,
		(m[5]*m[6] - m[3]*m[8]) * inv,
		(m[0]*m[8] - m[2]*m[6]) * inv,
		(m[2]*m[3] - m[0]*m[5]) * inv,
		(m[3]*m[7] - m[4]*m[6]) * inv,
		(m[1]*m[6] - m[0]*m[7]) * inv,
		(m[0]*m[4] - m[1]*m[3]) * inv,
	}}, nil
}

// AxisAligned reports whether h is an axis-aligned affine map — no rotation,
// shear or perspective terms — and returns its CaptureMapping parameters.
// The test is exact on the off-diagonal terms: the receiver uses it to route
// frontal poses through the pre-homography decode path bit-identically, so a
// "nearly zero" tolerance would silently resample clean captures.
func (h Homography) AxisAligned() (sx, sy, ox, oy float64, ok bool) {
	//lint:ignore floateq the frontal fast path must trigger only on exactly-affine maps; approximate zeros must take the warp path
	if h.M[1] != 0 || h.M[3] != 0 || h.M[6] != 0 || h.M[7] != 0 {
		return 0, 0, 0, 0, false
	}
	w := h.M[8]
	if !(math.Abs(w) > 0) {
		return 0, 0, 0, 0, false
	}
	inv := 1 / w
	sx, sy = h.M[0]*inv, h.M[4]*inv
	ox, oy = h.M[2]*inv, h.M[5]*inv
	if !(sx > 0) || !(sy > 0) || math.IsInf(sx, 0) || math.IsInf(sy, 0) {
		return 0, 0, 0, 0, false
	}
	return sx, sy, ox, oy, true
}

// Validate reports whether h is a usable (finite, invertible) map.
func (h Homography) Validate() error {
	finite := true
	for _, v := range h.M {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
		}
	}
	if !finite {
		return fmt.Errorf("frame: homography has non-finite entries: %v", h.M)
	}
	if _, err := h.Invert(); err != nil {
		return err
	}
	return nil
}

// SolveHomography computes the homography mapping src[i] → dst[i] for four
// point correspondences by the normalized direct linear transform: both
// point sets are Hartley-normalized (centroid at the origin, mean distance
// √2), the resulting 8×8 linear system is solved by Gaussian elimination
// with partial pivoting — fixed work, no data-dependent iteration — and the
// similarity transforms are folded back in. Collinear, coincident or
// non-finite corners return ErrDegenerateQuad.
func SolveHomography(src, dst [4][2]float64) (Homography, error) {
	tsrc, nsrc, err := hartleyNormalize(src)
	if err != nil {
		return Homography{}, err
	}
	tdst, ndst, err := hartleyNormalize(dst)
	if err != nil {
		return Homography{}, err
	}
	// Build the 8×8 DLT system A·h = b on the normalized points, with the
	// normalized homography's last entry fixed at 1:
	//   u·w = h0·x + h1·y + h2,  v·w = h3·x + h4·y + h5,  w = h6·x + h7·y + 1.
	var a [8][9]float64 // augmented: a[r][8] is the right-hand side
	for i := 0; i < 4; i++ {
		x, y := nsrc[i][0], nsrc[i][1]
		u, v := ndst[i][0], ndst[i][1]
		a[2*i] = [9]float64{x, y, 1, 0, 0, 0, -u * x, -u * y, u}
		a[2*i+1] = [9]float64{0, 0, 0, x, y, 1, -v * x, -v * y, v}
	}
	h8, err := solve8(&a)
	if err != nil {
		return Homography{}, err
	}
	hn := Homography{M: [9]float64{h8[0], h8[1], h8[2], h8[3], h8[4], h8[5], h8[6], h8[7], 1}}
	// Denormalize: H = T_dst⁻¹ · Hn · T_src. The inverse of a similarity
	// [s,0,-s·cx; 0,s,-s·cy; 0,0,1] is [1/s,0,cx; 0,1/s,cy; 0,0,1].
	out := tdst.inverse().hom().Mul(hn).Mul(tsrc.hom())
	if err := out.Validate(); err != nil {
		// A numerically near-degenerate quad can slip past the pivot check;
		// the result is still unusable, so it reports the same typed error.
		return Homography{}, ErrDegenerateQuad
	}
	return out, nil
}

// similarity is the Hartley normalizing transform x' = s·(x − c).
type similarity struct {
	s      float64
	cx, cy float64
}

func (t similarity) hom() Homography {
	return Homography{M: [9]float64{t.s, 0, -t.s * t.cx, 0, t.s, -t.s * t.cy, 0, 0, 1}}
}

func (t similarity) inverse() similarity {
	return similarity{s: 1 / t.s, cx: -t.cx * t.s, cy: -t.cy * t.s}
}

// hartleyNormalize returns the similarity moving the point set's centroid to
// the origin and its mean distance to √2, plus the transformed points.
func hartleyNormalize(pts [4][2]float64) (similarity, [4][2]float64, error) {
	var cx, cy float64
	for _, p := range pts {
		if math.IsNaN(p[0]) || math.IsInf(p[0], 0) || math.IsNaN(p[1]) || math.IsInf(p[1], 0) {
			return similarity{}, [4][2]float64{}, ErrDegenerateQuad
		}
		cx += p[0]
		cy += p[1]
	}
	cx /= 4
	cy /= 4
	var md float64
	for _, p := range pts {
		dx := p[0] - cx
		dy := p[1] - cy
		// Plain Sqrt, not Hypot: corner coordinates are pixel-scale, far
		// from the overflow regime Hypot exists to handle.
		md += math.Sqrt(dx*dx + dy*dy)
	}
	md /= 4
	if !(md > 1e-9) {
		return similarity{}, [4][2]float64{}, ErrDegenerateQuad
	}
	t := similarity{s: math.Sqrt2 / md, cx: cx, cy: cy}
	var out [4][2]float64
	for i, p := range pts {
		out[i][0] = t.s * (p[0] - cx)
		out[i][1] = t.s * (p[1] - cy)
	}
	return t, out, nil
}

// solve8 solves the augmented 8×9 system in place by Gaussian elimination
// with partial pivoting. A pivot below tolerance means the correspondences
// do not determine a homography (collinear or coincident corners).
func solve8(a *[8][9]float64) ([8]float64, error) {
	var x [8]float64
	for col := 0; col < 8; col++ {
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < 8; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if !(best > 1e-10) {
			return x, ErrDegenerateQuad
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < 8; r++ {
			f := a[r][col] * inv
			for c := col; c < 9; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	for r := 7; r >= 0; r-- {
		v := a[r][8]
		for c := r + 1; c < 8; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// WarpInto inverse-warps src into dst through h: every destination pixel
// (x, y) is bilinearly sampled from src at h.Apply(x, y), so h maps
// destination coordinates into source coordinates. Samples falling outside
// src (or on the map's horizon line) read 0 — the black overscan a camera
// sees past the screen edge. dst must not alias src; sizes may differ.
//
// Integral 8-bit sources (quantized captures, the common case) route through
// the exact integer Q16 bilinear kernel (fixed.BilinearQ16); non-integral
// sources take the float taps. Either way the arithmetic depends only on
// (src, dst geometry, h), never on worker identity, so warped pipelines stay
// bit-identical at any worker count.
func WarpInto(src, dst *Frame, h Homography) {
	if src == dst || &src.Pix[0] == &dst.Pix[0] {
		panic("frame.WarpInto: dst aliases src")
	}
	if fixed.IsIntegral8(src.Pix) {
		warpIntegral(src, dst, h)
		return
	}
	warpFloat(src, dst, h)
}

// Warp is the allocating convenience form of WarpInto at src's size.
func Warp(src *Frame, h Homography) *Frame {
	dst := New(src.W, src.H)
	WarpInto(src, dst, h)
	return dst
}

func warpFloat(src, dst *Frame, h Homography) {
	m0, m1, m2 := h.M[0], h.M[1], h.M[2]
	m3, m4, m5 := h.M[3], h.M[4], h.M[5]
	m6, m7, m8 := h.M[6], h.M[7], h.M[8]
	maxX := float64(src.W - 1)
	maxY := float64(src.H - 1)
	for y := 0; y < dst.H; y++ {
		fy := float64(y)
		nx0 := m1*fy + m2
		ny0 := m4*fy + m5
		d0 := m7*fy + m8
		orow := dst.Pix[y*dst.W : (y+1)*dst.W]
		for x := 0; x < dst.W; x++ {
			fx := float64(x)
			d := m6*fx + d0
			if !(math.Abs(d) > 1e-12) {
				orow[x] = 0
				continue
			}
			inv := 1 / d
			sx := (m0*fx + nx0) * inv
			sy := (m3*fx + ny0) * inv
			// The guard is NaN-safe: a non-finite sample coordinate fails
			// both comparisons and reads the black overscan.
			if !(sx >= 0 && sx <= maxX && sy >= 0 && sy <= maxY) {
				orow[x] = 0
				continue
			}
			x0 := int(sx)
			y0 := int(sy)
			x1 := x0 + 1
			if x1 > src.W-1 {
				x1 = src.W - 1
			}
			y1 := y0 + 1
			if y1 > src.H-1 {
				y1 = src.H - 1
			}
			wx := float32(sx - float64(x0))
			wy := float32(sy - float64(y0))
			row0 := src.Pix[y0*src.W:]
			row1 := src.Pix[y1*src.W:]
			top := row0[x0] + (row0[x1]-row0[x0])*wx
			bot := row1[x0] + (row1[x1]-row1[x0])*wx
			orow[x] = top + (bot-top)*wy
		}
	}
}

// warpIntegral is the integer-tap path: source pixels are exact int32 in
// [0, 255] (the IsIntegral8 precondition), the bilinear weights are Q16, and
// the interpolation runs in fixed.BilinearQ16's exact integer arithmetic.
func warpIntegral(src, dst *Frame, h Homography) {
	m0, m1, m2 := h.M[0], h.M[1], h.M[2]
	m3, m4, m5 := h.M[3], h.M[4], h.M[5]
	m6, m7, m8 := h.M[6], h.M[7], h.M[8]
	maxX := float64(src.W - 1)
	maxY := float64(src.H - 1)
	const qOne = 1 << 16
	for y := 0; y < dst.H; y++ {
		fy := float64(y)
		nx0 := m1*fy + m2
		ny0 := m4*fy + m5
		d0 := m7*fy + m8
		orow := dst.Pix[y*dst.W : (y+1)*dst.W]
		for x := 0; x < dst.W; x++ {
			fx := float64(x)
			d := m6*fx + d0
			if !(math.Abs(d) > 1e-12) {
				orow[x] = 0
				continue
			}
			inv := 1 / d
			sx := (m0*fx + nx0) * inv
			sy := (m3*fx + ny0) * inv
			if !(sx >= 0 && sx <= maxX && sy >= 0 && sy <= maxY) {
				orow[x] = 0
				continue
			}
			x0 := int(sx)
			y0 := int(sy)
			x1 := x0 + 1
			if x1 > src.W-1 {
				x1 = src.W - 1
			}
			y1 := y0 + 1
			if y1 > src.H-1 {
				y1 = src.H - 1
			}
			wx := int32((sx - float64(x0)) * qOne)
			wy := int32((sy - float64(y0)) * qOne)
			row0 := src.Pix[y0*src.W:]
			row1 := src.Pix[y1*src.W:]
			q := fixed.BilinearQ16(
				int32(row0[x0]), int32(row0[x1]),
				int32(row1[x0]), int32(row1[x1]), wx, wy)
			orow[x] = float32(q) * (1.0 / qOne)
		}
	}
}
