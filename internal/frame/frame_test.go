package frame

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	f := New(7, 3)
	if f.W != 7 || f.H != 3 || len(f.Pix) != 21 {
		t.Fatalf("New(7,3) = %dx%d len %d", f.W, f.H, len(f.Pix))
	}
	for i, v := range f.Pix {
		if v != 0 {
			t.Fatalf("pixel %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnInvalidSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestNewFilled(t *testing.T) {
	f := NewFilled(4, 4, 127)
	for _, v := range f.Pix {
		if v != 127 {
			t.Fatalf("got %v, want 127", v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	f := New(5, 4)
	f.Set(3, 2, 42)
	if got := f.At(3, 2); got != 42 {
		t.Fatalf("At(3,2) = %v, want 42", got)
	}
	if got := f.Pix[2*5+3]; got != 42 {
		t.Fatalf("row-major layout violated: Pix[13] = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewFilled(3, 3, 10)
	g := f.Clone()
	g.Set(0, 0, 99)
	if f.At(0, 0) != 10 {
		t.Fatal("Clone shares pixel storage")
	}
}

func TestAddSub(t *testing.T) {
	f := NewFilled(2, 2, 100)
	g := NewFilled(2, 2, 30)
	if err := f.Add(g); err != nil {
		t.Fatal(err)
	}
	if f.At(1, 1) != 130 {
		t.Fatalf("Add: got %v, want 130", f.At(1, 1))
	}
	if err := f.Sub(g); err != nil {
		t.Fatal(err)
	}
	if f.At(1, 1) != 100 {
		t.Fatalf("Sub: got %v, want 100", f.At(1, 1))
	}
}

func TestAddSizeMismatch(t *testing.T) {
	f := New(2, 2)
	g := New(3, 2)
	if err := f.Add(g); err != ErrSizeMismatch {
		t.Fatalf("Add mismatched sizes: err = %v, want ErrSizeMismatch", err)
	}
	if err := f.Sub(g); err != ErrSizeMismatch {
		t.Fatalf("Sub mismatched sizes: err = %v, want ErrSizeMismatch", err)
	}
	if err := f.AddScaled(g, 2); err != ErrSizeMismatch {
		t.Fatalf("AddScaled mismatched sizes: err = %v, want ErrSizeMismatch", err)
	}
}

func TestAddScaled(t *testing.T) {
	f := NewFilled(2, 2, 10)
	g := NewFilled(2, 2, 5)
	if err := f.AddScaled(g, -2); err != nil {
		t.Fatal(err)
	}
	if f.At(0, 0) != 0 {
		t.Fatalf("AddScaled: got %v, want 0", f.At(0, 0))
	}
}

func TestClamp(t *testing.T) {
	f := New(1, 3)
	f.Pix[0], f.Pix[1], f.Pix[2] = -20, 100, 300
	f.Clamp(0, 255)
	want := []float32{0, 100, 255}
	for i, w := range want {
		if f.Pix[i] != w {
			t.Fatalf("Clamp pixel %d = %v, want %v", i, f.Pix[i], w)
		}
	}
}

func TestQuantize(t *testing.T) {
	f := New(1, 4)
	f.Pix[0], f.Pix[1], f.Pix[2], f.Pix[3] = 12.4, 12.6, -3, 270
	f.Quantize()
	want := []float32{12, 13, 0, 255}
	for i, w := range want {
		if f.Pix[i] != w {
			t.Fatalf("Quantize pixel %d = %v, want %v", i, f.Pix[i], w)
		}
	}
}

func TestMeanMinMax(t *testing.T) {
	f := New(2, 2)
	copy(f.Pix, []float32{1, 2, 3, 6})
	if m := f.Mean(); m != 3 {
		t.Fatalf("Mean = %v, want 3", m)
	}
	min, max := f.MinMax()
	if min != 1 || max != 6 {
		t.Fatalf("MinMax = %v,%v, want 1,6", min, max)
	}
}

// TestComplementProperty checks the paper's defining identity (§3.2):
// every pixel pair sums to exactly 2v.
func TestComplementProperty(t *testing.T) {
	prop := func(seed int64, level uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := New(8, 8)
		for i := range f.Pix {
			f.Pix[i] = float32(rng.Intn(256))
		}
		v := float32(level)
		g := f.Complement(v)
		for i := range f.Pix {
			if f.Pix[i]+g.Pix[i] != 2*v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestComplementFusesToLevel checks that averaging a frame with its
// complement yields the flat luminance level — the flicker-fusion argument.
func TestComplementFusesToLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(16, 16)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	g := f.Complement(127)
	avg, err := Average(f, g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range avg.Pix {
		if v != 127 {
			t.Fatalf("fused pixel %d = %v, want 127", i, v)
		}
	}
}

func TestRegion(t *testing.T) {
	f := New(6, 4)
	for i := range f.Pix {
		f.Pix[i] = float32(i)
	}
	r := f.Region(2, 1, 3, 2)
	if r.W != 3 || r.H != 2 {
		t.Fatalf("Region size %dx%d, want 3x2", r.W, r.H)
	}
	if r.At(0, 0) != f.At(2, 1) || r.At(2, 1) != f.At(4, 2) {
		t.Fatal("Region copied wrong pixels")
	}
}

func TestRegionClips(t *testing.T) {
	f := NewFilled(4, 4, 9)
	r := f.Region(-2, -2, 4, 4)
	if r.W != 2 || r.H != 2 {
		t.Fatalf("clipped Region size %dx%d, want 2x2", r.W, r.H)
	}
	r2 := f.Region(3, 3, 10, 10)
	if r2.W != 1 || r2.H != 1 {
		t.Fatalf("clipped Region size %dx%d, want 1x1", r2.W, r2.H)
	}
}

func TestBlit(t *testing.T) {
	dst := New(4, 4)
	src := NewFilled(2, 2, 5)
	dst.Blit(src, 1, 1)
	if dst.At(1, 1) != 5 || dst.At(2, 2) != 5 || dst.At(0, 0) != 0 || dst.At(3, 3) != 0 {
		t.Fatal("Blit placed pixels incorrectly")
	}
	// Clipping out of bounds must not panic.
	dst.Blit(src, 3, 3)
	if dst.At(3, 3) != 5 {
		t.Fatal("clipped Blit lost in-bounds pixel")
	}
}

func TestEqual(t *testing.T) {
	f := NewFilled(2, 2, 1)
	g := NewFilled(2, 2, 1)
	if !f.Equal(g) {
		t.Fatal("identical frames not Equal")
	}
	g.Set(0, 0, 2)
	if f.Equal(g) {
		t.Fatal("different frames Equal")
	}
	if f.Equal(New(2, 3)) {
		t.Fatal("different sizes Equal")
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(); err == nil {
		t.Fatal("Average() of nothing should error")
	}
	if _, err := Average(New(2, 2), New(3, 3)); err == nil {
		t.Fatal("Average of mismatched sizes should error")
	}
}

func TestBoxBlurFlatInvariant(t *testing.T) {
	f := NewFilled(10, 10, 77)
	for _, r := range []int{0, 1, 2, 3} {
		b := BoxBlur(f, r)
		for i, v := range b.Pix {
			if math.Abs(float64(v)-77) > 1e-3 {
				t.Fatalf("r=%d pixel %d = %v, want 77", r, i, v)
			}
		}
	}
}

func TestBoxBlurReducesChessboardEnergy(t *testing.T) {
	f := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if (x+y)%2 == 1 {
				f.Set(x, y, 40)
			}
		}
	}
	b := BoxBlur(f, 1)
	// A 3x3 box over a unit chessboard averages 4 or 5 of 9 high pixels:
	// interior values must collapse toward the 20 mean.
	for y := 2; y < 14; y++ {
		for x := 2; x < 14; x++ {
			v := float64(b.At(x, y))
			if math.Abs(v-20) > 3 {
				t.Fatalf("blurred chessboard at (%d,%d) = %v, want ~20", x, y, v)
			}
		}
	}
}

func TestBoxBlurMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := New(9, 7)
	for i := range f.Pix {
		f.Pix[i] = rng.Float32() * 255
	}
	r := 2
	fast := BoxBlur(f, r)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			var sum float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					sum += float64(f.At(clampIdx(x+dx, f.W), clampIdx(y+dy, f.H)))
				}
			}
			want := sum / float64((2*r+1)*(2*r+1))
			if math.Abs(float64(fast.At(x, y))-want) > 1e-2 {
				t.Fatalf("BoxBlur(%d,%d) = %v, naive = %v", x, y, fast.At(x, y), want)
			}
		}
	}
}

func TestResampleDownPreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := New(64, 48)
	for i := range f.Pix {
		f.Pix[i] = rng.Float32() * 255
	}
	g := Resample(f, 32, 24)
	if math.Abs(f.Mean()-g.Mean()) > 1.0 {
		t.Fatalf("area resample mean drifted: %v -> %v", f.Mean(), g.Mean())
	}
}

func TestResampleUpFlat(t *testing.T) {
	f := NewFilled(4, 4, 99)
	g := Resample(f, 9, 9)
	for i, v := range g.Pix {
		if math.Abs(float64(v)-99) > 1e-3 {
			t.Fatalf("bilinear upsample pixel %d = %v, want 99", i, v)
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	f := NewFilled(5, 5, 42)
	g := Resample(f, 5, 5)
	if !f.Equal(g) {
		t.Fatal("identity resample changed pixels")
	}
}

func TestMetrics(t *testing.T) {
	a := NewFilled(4, 4, 100)
	b := NewFilled(4, 4, 104)
	mae, err := MAE(a, b)
	if err != nil || mae != 4 {
		t.Fatalf("MAE = %v (err %v), want 4", mae, err)
	}
	mse, err := MSE(a, b)
	if err != nil || mse != 16 {
		t.Fatalf("MSE = %v (err %v), want 16", mse, err)
	}
	psnr, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/16.0)
	if math.Abs(psnr-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", psnr, want)
	}
	if p, _ := PSNR(a, a); !math.IsInf(p, 1) {
		t.Fatalf("PSNR of identical frames = %v, want +Inf", p)
	}
	if _, err := MAE(a, New(2, 2)); err != ErrSizeMismatch {
		t.Fatalf("MAE size mismatch err = %v", err)
	}
}

func TestHighFreqEnergyDiscriminates(t *testing.T) {
	flat := NewFilled(32, 32, 128)
	chess := flat.Clone()
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if (x+y)%2 == 1 {
				chess.Set(x, y, 128+20)
			}
		}
	}
	eFlat := HighFreqEnergy(flat, 1)
	eChess := HighFreqEnergy(chess, 1)
	if eFlat != 0 {
		t.Fatalf("flat frame energy = %v, want 0", eFlat)
	}
	if eChess < 5 {
		t.Fatalf("chessboard energy = %v, want >= 5", eChess)
	}
}
