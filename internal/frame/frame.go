// Package frame provides the grayscale frame type shared by every stage of
// the InFrame pipeline: video generation, multiplexing, display simulation,
// camera capture and decoding.
//
// Frames store luminance as float32 in the nominal range [0, 255]. Keeping
// the pipeline in float avoids accumulating quantization error across the
// encode → display → integrate → capture chain; values are clamped and
// quantized only where the physical system does (the display's drive value
// and the camera's ADC).
package frame

import (
	"errors"
	"fmt"
	"math"

	"inframe/internal/fixed"
)

// Frame is a single grayscale image plane. Pixels are stored row-major:
// pixel (x, y) lives at Pix[y*W+x]. The zero value is not usable; construct
// frames with New or NewFilled.
type Frame struct {
	W, H int
	Pix  []float32
}

// ErrSizeMismatch is returned by binary frame operations whose operands have
// different dimensions.
var ErrSizeMismatch = errors.New("frame: size mismatch")

// New returns a zeroed (black) frame of the given dimensions.
// It panics if either dimension is non-positive.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame.New: invalid size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

// NewFilled returns a frame of the given dimensions with every pixel set to v.
func NewFilled(w, h int, v float32) *Frame {
	f := New(w, h)
	fillPix(f.Pix, v)
	return f
}

// fillPix sets every element of p to v. This is the single full-plane fill
// loop shared by Fill, NewFilled and Pool.Get's zeroing path: zero fills
// (by far the common case — every pooled Get zeroes) compile to a memclr,
// and non-zero fills use a doubling copy instead of a scalar store loop.
// The zero test is on the bit pattern, not the value: -0 must take the
// copy path, because memclr would silently rewrite it to +0 and break the
// pool's bit-identity guarantee.
func fillPix(p []float32, v float32) {
	if math.Float32bits(v) == 0 {
		clear(p)
		return
	}
	if len(p) == 0 {
		return
	}
	p[0] = v
	for i := 1; i < len(p); i <<= 1 {
		copy(p[i:], p[:i])
	}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]float32, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// CloneInto copies f's pixels into dst, the allocation-free counterpart of
// Clone for pooled buffers. It panics on a size mismatch: unlike the
// error-returning arithmetic ops, Into variants are wired by the pipeline
// itself, so a mismatch is a plumbing bug, not an input condition.
func (f *Frame) CloneInto(dst *Frame) {
	if !f.SameSize(dst) {
		panic(fmt.Sprintf("frame.CloneInto: %dx%d into %dx%d", f.W, f.H, dst.W, dst.H))
	}
	copy(dst.Pix, f.Pix)
}

// Row returns the y'th pixel row as a shared view into f's buffer. Writing
// through the view writes the frame; the view is only valid while the
// caller's borrow of f lasts.
func (f *Frame) Row(y int) []float32 {
	return f.Pix[y*f.W : (y+1)*f.W]
}

// At returns the pixel value at (x, y). It panics if the coordinates are out
// of bounds, matching slice semantics.
func (f *Frame) At(x, y int) float32 { return f.Pix[y*f.W+x] }

// Set assigns the pixel value at (x, y).
func (f *Frame) Set(x, y int, v float32) { f.Pix[y*f.W+x] = v }

// SameSize reports whether f and g have identical dimensions.
func (f *Frame) SameSize(g *Frame) bool { return f.W == g.W && f.H == g.H }

// Fill sets every pixel to v.
func (f *Frame) Fill(v float32) { fillPix(f.Pix, v) }

// Add computes f += g in place.
func (f *Frame) Add(g *Frame) error {
	if !f.SameSize(g) {
		return ErrSizeMismatch
	}
	for i, v := range g.Pix {
		f.Pix[i] += v
	}
	return nil
}

// Sub computes f -= g in place.
func (f *Frame) Sub(g *Frame) error {
	if !f.SameSize(g) {
		return ErrSizeMismatch
	}
	for i, v := range g.Pix {
		f.Pix[i] -= v
	}
	return nil
}

// AddScaled computes f += k*g in place.
func (f *Frame) AddScaled(g *Frame, k float32) error {
	if !f.SameSize(g) {
		return ErrSizeMismatch
	}
	for i, v := range g.Pix {
		f.Pix[i] += k * v
	}
	return nil
}

// SubInto computes dst = a - b without allocating. All three frames must
// share one size; a mismatch panics (a pipeline wiring bug, see CloneInto).
// dst may alias a or b.
func SubInto(dst, a, b *Frame) {
	if !dst.SameSize(a) || !dst.SameSize(b) {
		panic(fmt.Sprintf("frame.SubInto: %dx%d = %dx%d - %dx%d", dst.W, dst.H, a.W, a.H, b.W, b.H))
	}
	for i, v := range a.Pix {
		dst.Pix[i] = v - b.Pix[i]
	}
}

// AddScaledInto computes dst = a + k*b without allocating. All three frames
// must share one size; a mismatch panics. dst may alias a or b.
func AddScaledInto(dst, a, b *Frame, k float32) {
	if !dst.SameSize(a) || !dst.SameSize(b) {
		panic(fmt.Sprintf("frame.AddScaledInto: %dx%d = %dx%d + k*%dx%d", dst.W, dst.H, a.W, a.H, b.W, b.H))
	}
	for i, v := range a.Pix {
		dst.Pix[i] = v + k*b.Pix[i]
	}
}

// Scale multiplies every pixel by k.
func (f *Frame) Scale(k float32) {
	for i := range f.Pix {
		f.Pix[i] *= k
	}
}

// Clamp limits every pixel to [lo, hi].
func (f *Frame) Clamp(lo, hi float32) {
	for i, v := range f.Pix {
		if v < lo {
			f.Pix[i] = lo
		} else if v > hi {
			f.Pix[i] = hi
		}
	}
}

// Quantize rounds every pixel to the nearest integer and clamps to [0, 255],
// modelling an 8-bit pixel value while keeping float storage.
func (f *Frame) Quantize() {
	for i, v := range f.Pix {
		f.Pix[i] = float32(fixed.Round8(v))
	}
}

// Mean returns the average pixel value.
func (f *Frame) Mean() float64 {
	var s float64
	for _, v := range f.Pix {
		s += float64(v)
	}
	return s / float64(len(f.Pix))
}

// MinMax returns the smallest and largest pixel values.
func (f *Frame) MinMax() (min, max float32) {
	min, max = f.Pix[0], f.Pix[0]
	for _, v := range f.Pix[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Complement returns the complementary frame of f with respect to luminance
// level v: every output pixel o satisfies o + p = 2v (§3.2 of the paper).
func (f *Frame) Complement(v float32) *Frame {
	g := New(f.W, f.H)
	f.ComplementInto(g, v)
	return g
}

// ComplementInto writes f's complement with respect to v into dst, which
// must match f's size (panics otherwise). dst may alias f.
func (f *Frame) ComplementInto(dst *Frame, v float32) {
	if !f.SameSize(dst) {
		panic(fmt.Sprintf("frame.ComplementInto: %dx%d into %dx%d", f.W, f.H, dst.W, dst.H))
	}
	for i, p := range f.Pix {
		dst.Pix[i] = 2*v - p
	}
}

// Region copies the rectangle with origin (x0, y0) and size w×h into a new
// frame. The rectangle is clipped to f's bounds; it panics if the clipped
// rectangle is empty.
func (f *Frame) Region(x0, y0, w, h int) *Frame {
	if x0 < 0 {
		w += x0
		x0 = 0
	}
	if y0 < 0 {
		h += y0
		y0 = 0
	}
	if x0+w > f.W {
		w = f.W - x0
	}
	if y0+h > f.H {
		h = f.H - y0
	}
	if w <= 0 || h <= 0 {
		panic("frame.Region: empty region")
	}
	g := New(w, h)
	for y := 0; y < h; y++ {
		copy(g.Pix[y*w:(y+1)*w], f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x0+w])
	}
	return g
}

// RegionInto copies the dst.W×dst.H rectangle of f with origin (x0, y0)
// into dst. Unlike Region it does not clip: the rectangle must lie fully
// inside f (the pooled pipeline validates geometry at configuration time),
// and a violation panics through the row slice bounds.
func (f *Frame) RegionInto(dst *Frame, x0, y0 int) {
	w := dst.W
	for y := 0; y < dst.H; y++ {
		base := (y0+y)*f.W + x0
		copy(dst.Pix[y*w:(y+1)*w], f.Pix[base:base+w])
	}
}

// Blit copies src into f with its origin at (x0, y0), clipping to f's bounds.
// Blit is already an in-place operation (f is the destination); it is the
// "BlitInto" of the pooled API.
func (f *Frame) Blit(src *Frame, x0, y0 int) {
	// Clip the horizontal span once; each row is then a single copy.
	xlo, xhi := 0, src.W
	if x0 < 0 {
		xlo = -x0
	}
	if x0+xhi > f.W {
		xhi = f.W - x0
	}
	if xlo >= xhi {
		return
	}
	for y := 0; y < src.H; y++ {
		dy := y0 + y
		if dy < 0 || dy >= f.H {
			continue
		}
		dst := f.Pix[dy*f.W : (dy+1)*f.W]
		srow := src.Pix[y*src.W : (y+1)*src.W]
		copy(dst[x0+xlo:x0+xhi], srow[xlo:xhi])
	}
}

// Equal reports whether f and g are identical in size and pixel values.
func (f *Frame) Equal(g *Frame) bool {
	if !f.SameSize(g) {
		return false
	}
	for i, v := range f.Pix {
		//lint:ignore floateq Equal's contract is bit-identity (the worker-count invariance tests depend on it), so the comparison must be exact
		if g.Pix[i] != v {
			return false
		}
	}
	return true
}

// String summarizes the frame for debugging.
func (f *Frame) String() string {
	min, max := f.MinMax()
	return fmt.Sprintf("Frame(%dx%d mean=%.1f range=[%.1f,%.1f])", f.W, f.H, f.Mean(), min, max)
}
