package frame

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"inframe/internal/fixed"
)

// RGB is a color frame with planar float32 storage in the nominal range
// [0, 255] per channel. The InFrame prototype adds the chessboard equally to
// R, G and B — i.e. purely to luma — so the core pipeline runs on the Y
// plane and this type carries the presentation path (color demos, Y4M/PNG
// export, colored video sources).
type RGB struct {
	W, H    int
	R, G, B []float32
}

// NewRGB returns a zeroed color frame.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame.NewRGB: invalid size %dx%d", w, h))
	}
	n := w * h
	return &RGB{W: w, H: h, R: make([]float32, n), G: make([]float32, n), B: make([]float32, n)}
}

// NewRGBFilled returns a color frame with every pixel set to (r, g, b).
func NewRGBFilled(w, h int, r, g, b float32) *RGB {
	f := NewRGB(w, h)
	for i := range f.R {
		f.R[i], f.G[i], f.B[i] = r, g, b
	}
	return f
}

// Clone returns a deep copy.
func (f *RGB) Clone() *RGB {
	g := NewRGB(f.W, f.H)
	copy(g.R, f.R)
	copy(g.G, f.G)
	copy(g.B, f.B)
	return g
}

// At returns the pixel at (x, y).
func (f *RGB) At(x, y int) (r, g, b float32) {
	i := y*f.W + x
	return f.R[i], f.G[i], f.B[i]
}

// Set assigns the pixel at (x, y).
func (f *RGB) Set(x, y int, r, g, b float32) {
	i := y*f.W + x
	f.R[i], f.G[i], f.B[i] = r, g, b
}

// Clamp limits every channel to [lo, hi].
func (f *RGB) Clamp(lo, hi float32) {
	for _, ch := range [][]float32{f.R, f.G, f.B} {
		for i, v := range ch {
			if v < lo {
				ch[i] = lo
			} else if v > hi {
				ch[i] = hi
			}
		}
	}
}

// Rec. 601 luma weights, matching the standard library's conversion and the
// Y'CbCr encoding used by Y4M.
const (
	lumaR = 0.299
	lumaG = 0.587
	lumaB = 0.114
)

// Luma extracts the Y plane (Rec. 601 weights).
func (f *RGB) Luma() *Frame {
	out := New(f.W, f.H)
	for i := range out.Pix {
		out.Pix[i] = lumaR*f.R[i] + lumaG*f.G[i] + lumaB*f.B[i]
	}
	return out
}

// AddLumaDelta shifts every pixel's luma by d[i] while preserving chroma
// exactly: the delta is added equally to R, G and B (the paper's prototype
// behaviour), then clamped to [0, 255].
func (f *RGB) AddLumaDelta(d *Frame) error {
	if d.W != f.W || d.H != f.H {
		return ErrSizeMismatch
	}
	for i, dv := range d.Pix {
		f.R[i] += dv
		f.G[i] += dv
		f.B[i] += dv
	}
	f.Clamp(0, 255)
	return nil
}

// AddLumaDeltaOf writes clamp(src + sign·d, 0, 255) into f, one fused pass
// per pixel: the render-loop form of src.Clone() followed by
// AddLumaDelta(sign·d), without the intermediate full-frame copy or the
// separate clamp sweep. The result is bit-identical to the two-step path for
// every value an 8-bit video source can hold (the lone divergence is
// src = −0 with a zero delta, which the fused add normalizes to +0).
// f, src and d must share one size; f may not alias src.
func (f *RGB) AddLumaDeltaOf(src *RGB, d *Frame, sign float32) error {
	if d.W != f.W || d.H != f.H || src.W != f.W || src.H != f.H {
		return ErrSizeMismatch
	}
	for i, dv := range d.Pix {
		a := sign * dv
		r := src.R[i] + a
		if r < 0 {
			r = 0
		} else if r > 255 {
			r = 255
		}
		g := src.G[i] + a
		if g < 0 {
			g = 0
		} else if g > 255 {
			g = 255
		}
		b := src.B[i] + a
		if b < 0 {
			b = 0
		} else if b > 255 {
			b = 255
		}
		f.R[i], f.G[i], f.B[i] = r, g, b
	}
	return nil
}

// LumaShifted returns the luma plane of the frame AddLumaDeltaOf would
// produce — Luma() of clamp(f + sign·d) — without materializing the
// intermediate RGB. Each channel value feeding the Rec. 601 dot product is
// the same clamped float32 the two-step path computes, so the plane is
// bit-identical to it.
func (f *RGB) LumaShifted(d *Frame, sign float32) (*Frame, error) {
	if d.W != f.W || d.H != f.H {
		return nil, ErrSizeMismatch
	}
	out := New(f.W, f.H)
	for i, dv := range d.Pix {
		a := sign * dv
		r := f.R[i] + a
		if r < 0 {
			r = 0
		} else if r > 255 {
			r = 255
		}
		g := f.G[i] + a
		if g < 0 {
			g = 0
		} else if g > 255 {
			g = 255
		}
		b := f.B[i] + a
		if b < 0 {
			b = 0
		} else if b > 255 {
			b = 255
		}
		out.Pix[i] = lumaR*r + lumaG*g + lumaB*b
	}
	return out, nil
}

// FromLuma lifts a grayscale frame into RGB (equal channels).
func FromLuma(y *Frame) *RGB {
	out := NewRGB(y.W, y.H)
	for i, v := range y.Pix {
		out.R[i], out.G[i], out.B[i] = v, v, v
	}
	return out
}

// YCbCr converts to Y'CbCr (BT.601 full range: Cb, Cr centered on 128).
func (f *RGB) YCbCr() (y, cb, cr *Frame) {
	y = New(f.W, f.H)
	cb = New(f.W, f.H)
	cr = New(f.W, f.H)
	for i := range y.Pix {
		r, g, b := float64(f.R[i]), float64(f.G[i]), float64(f.B[i])
		yy := lumaR*r + lumaG*g + lumaB*b
		y.Pix[i] = float32(yy)
		cb.Pix[i] = float32(128 + (b-yy)/1.772)
		cr.Pix[i] = float32(128 + (r-yy)/1.402)
	}
	return y, cb, cr
}

// RGBFromYCbCr converts BT.601 full-range planes back to RGB, clamped.
func RGBFromYCbCr(y, cb, cr *Frame) (*RGB, error) {
	if !y.SameSize(cb) || !y.SameSize(cr) {
		return nil, ErrSizeMismatch
	}
	out := NewRGB(y.W, y.H)
	for i := range y.Pix {
		yy := float64(y.Pix[i])
		cbv := float64(cb.Pix[i]) - 128
		crv := float64(cr.Pix[i]) - 128
		r := yy + 1.402*crv
		b := yy + 1.772*cbv
		g := (yy - lumaR*r - lumaB*b) / lumaG
		out.R[i] = float32(clamp255(r))
		out.G[i] = float32(clamp255(g))
		out.B[i] = float32(clamp255(b))
	}
	return out, nil
}

func clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// ToImageRGB converts to an 8-bit RGBA image, clamping each channel.
func ToImageRGB(f *RGB) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			i := y*f.W + x
			img.SetRGBA(x, y, color.RGBA{
				R: Quant8(f.R[i]), G: Quant8(f.G[i]), B: Quant8(f.B[i]), A: 255,
			})
		}
	}
	return img
}

// Quant8 rounds v to the nearest integer and saturates to [0,255]. It is
// the blessed float→uint8 clamp helper (enforced by the clamp analyzer):
// every conversion from the float pixel domain to 8-bit storage must
// saturate here rather than wrap. The rounding runs through the int32
// fixed-point kernel, which is proven bit-identical to the former
// math.Round path (see fixed.Round8).
func Quant8(v float32) uint8 {
	return fixed.Round8(v)
}

// RGBFromImage converts any image to an RGB frame.
func RGBFromImage(img image.Image) *RGB {
	b := img.Bounds()
	f := NewRGB(b.Dx(), b.Dy())
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			i := y*f.W + x
			f.R[i] = float32(r >> 8)
			f.G[i] = float32(g >> 8)
			f.B[i] = float32(bb >> 8)
		}
	}
	return f
}

// EncodePNGRGB writes f as a color PNG.
func EncodePNGRGB(w io.Writer, f *RGB) error {
	return png.Encode(w, ToImageRGB(f))
}

// DecodePNGRGB reads a PNG into an RGB frame.
func DecodePNGRGB(r io.Reader) (*RGB, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("frame: decoding png: %w", err)
	}
	return RGBFromImage(img), nil
}

// WritePNGRGB saves f as a color PNG at path.
func WritePNGRGB(path string, f *RGB) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("frame: creating %s: %w", path, err)
	}
	defer fh.Close()
	if err := EncodePNGRGB(fh, f); err != nil {
		return fmt.Errorf("frame: encoding %s: %w", path, err)
	}
	return fh.Close()
}

// ReadPNGRGB loads the PNG at path into an RGB frame.
func ReadPNGRGB(path string) (*RGB, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("frame: opening %s: %w", path, err)
	}
	defer fh.Close()
	return DecodePNGRGB(fh)
}
