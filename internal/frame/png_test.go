package frame

import (
	"bytes"
	"image"
	"image/color"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestPNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(20, 15)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	var buf bytes.Buffer
	if err := EncodePNG(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("PNG round trip changed integral pixel values")
	}
}

func TestToImageClamps(t *testing.T) {
	f := New(2, 1)
	f.Pix[0], f.Pix[1] = -50, 300
	img := ToImage(f)
	if img.GrayAt(0, 0).Y != 0 || img.GrayAt(1, 0).Y != 255 {
		t.Fatalf("ToImage clamp: got %d, %d", img.GrayAt(0, 0).Y, img.GrayAt(1, 0).Y)
	}
}

func TestFromImageColor(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 2, 1))
	img.Set(0, 0, color.RGBA{R: 255, G: 255, B: 255, A: 255})
	img.Set(1, 0, color.RGBA{A: 255})
	f := FromImage(img)
	if f.At(0, 0) != 255 || f.At(1, 0) != 0 {
		t.Fatalf("FromImage luminance: got %v, %v", f.At(0, 0), f.At(1, 0))
	}
}

func TestFromImageRespectsBoundsOffset(t *testing.T) {
	img := image.NewGray(image.Rect(5, 5, 8, 7))
	img.SetGray(5, 5, color.Gray{Y: 42})
	f := FromImage(img)
	if f.W != 3 || f.H != 2 {
		t.Fatalf("size %dx%d, want 3x2", f.W, f.H)
	}
	if f.At(0, 0) != 42 {
		t.Fatalf("offset bounds pixel = %v, want 42", f.At(0, 0))
	}
}

func TestWriteReadPNGFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.png")
	f := NewFilled(8, 8, 180)
	if err := WritePNG(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("file round trip changed pixels")
	}
}

func TestReadPNGMissing(t *testing.T) {
	if _, err := ReadPNG(filepath.Join(t.TempDir(), "missing.png")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDecodePNGGarbage(t *testing.T) {
	if _, err := DecodePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Fatal("expected error decoding garbage")
	}
}
