package frame

import "math"

// BoxBlur returns a copy of f blurred with a (2r+1)×(2r+1) box filter.
// Edges are handled by clamping coordinates (replicate padding). r <= 0
// returns a plain clone. This is the "smoothing" primitive the InFrame
// demultiplexer subtracts to expose chessboard energy (§3.3).
func BoxBlur(f *Frame, r int) *Frame {
	out := New(f.W, f.H)
	BoxBlurInto(f, out, r, nil)
	return out
}

// BoxBlurInto blurs f into dst (same size as f, panics otherwise) drawing
// its two scratch buffers — the intermediate row-blurred plane and the
// column sliding window — from p, so a pooled steady-state blur allocates
// nothing. dst must not alias f. A nil pool allocates the scratch.
func BoxBlurInto(f, dst *Frame, r int, p *Pool) {
	if !f.SameSize(dst) {
		panic("frame.BoxBlurInto: size mismatch")
	}
	if r <= 0 {
		f.CloneInto(dst)
		return
	}
	// Two separable passes: horizontal then vertical, each using a sliding
	// running sum so the cost is O(W*H) independent of r.
	tmp := p.Get(f.W, f.H)
	blurRows(f, tmp, r)
	// The column window is a length-H scalar buffer; a 1×H pooled frame
	// serves exactly that without a second buffer type in the pool.
	colf := p.Get(1, f.H)
	blurCols(tmp, dst, r, colf.Pix)
	p.Put(colf)
	p.Put(tmp)
}

func blurRows(src, dst *Frame, r int) {
	w := src.W
	inv := 1 / float32(2*r+1)
	for y := 0; y < src.H; y++ {
		row := src.Pix[y*w : (y+1)*w]
		out := dst.Pix[y*w : (y+1)*w]
		var sum float32
		for i := -r; i <= r; i++ {
			sum += row[clampIdx(i, w)]
		}
		for x := 0; x < w; x++ {
			out[x] = sum * inv
			sum += row[clampIdx(x+r+1, w)] - row[clampIdx(x-r, w)]
		}
	}
}

func blurCols(src, dst *Frame, r int, col []float32) {
	w, h := src.W, src.H
	inv := 1 / float32(2*r+1)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = src.Pix[y*w+x]
		}
		var sum float32
		for i := -r; i <= r; i++ {
			sum += col[clampIdx(i, h)]
		}
		for y := 0; y < h; y++ {
			dst.Pix[y*w+x] = sum * inv
			sum += col[clampIdx(y+r+1, h)] - col[clampIdx(y-r, h)]
		}
	}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Resample returns f resampled to w×h using area averaging for reduction and
// bilinear interpolation for enlargement. This models the camera sensor
// seeing the screen at a different resolution than the display's.
func Resample(f *Frame, w, h int) *Frame {
	out := New(w, h)
	ResampleInto(f, out)
	return out
}

// ResampleInto resamples f into dst, whose dimensions select the target
// size: area averaging for reduction, bilinear interpolation for
// enlargement, a straight copy when the sizes match. dst must not alias f.
func ResampleInto(f, dst *Frame) {
	w, h := dst.W, dst.H
	if w == f.W && h == f.H {
		f.CloneInto(dst)
		return
	}
	if w <= f.W && h <= f.H {
		areaResample(f, dst)
		return
	}
	bilinearResample(f, dst)
}

// axisTaps is the hoisted per-axis weight table of the area resampler: for
// each output coordinate, the contributing input coordinates and their
// overlap weights. The weights depend only on one axis, so computing them
// once per output row/column — instead of once per (output pixel, input
// pixel) pair, where the overlap min/max calls dominated the capture
// profile — leaves the inner loop as pure multiply-accumulate. The taps are
// the exact overlap() values the unhoisted loops computed, visited in the
// same order, so the accumulation is bit-identical.
type axisTaps struct {
	// idx and wgt hold the flattened positive-weight taps; off[o]..off[o+1]
	// is output coordinate o's span.
	idx []int
	wgt []float64
	off []int
}

// buildAxisTaps tabulates one axis: inN input samples reduced to outN
// output samples at scale = inN/outN (≥ 1).
func buildAxisTaps(inN, outN int, scale float64) axisTaps {
	t := axisTaps{
		idx: make([]int, 0, inN+outN),
		wgt: make([]float64, 0, inN+outN),
		off: make([]int, outN+1),
	}
	for o := 0; o < outN; o++ {
		b0 := float64(o) * scale
		b1 := b0 + scale
		for i := int(b0); i < int(math.Ceil(b1)) && i < inN; i++ {
			f := overlap(float64(i), float64(i+1), b0, b1)
			if f <= 0 {
				continue
			}
			t.idx = append(t.idx, i)
			t.wgt = append(t.wgt, f)
		}
		t.off[o+1] = len(t.idx)
	}
	return t
}

func areaResample(f, out *Frame) {
	w, h := out.W, out.H
	sx := float64(f.W) / float64(w)
	sy := float64(f.H) / float64(h)
	xt := buildAxisTaps(f.W, w, sx)
	yt := buildAxisTaps(f.H, h, sy)
	for oy := 0; oy < h; oy++ {
		ys, ye := yt.off[oy], yt.off[oy+1]
		for ox := 0; ox < w; ox++ {
			xs, xe := xt.off[ox], xt.off[ox+1]
			var sum, area float64
			for ti := ys; ti < ye; ti++ {
				fy := yt.wgt[ti]
				row := f.Pix[yt.idx[ti]*f.W : (yt.idx[ti]+1)*f.W]
				for tj := xs; tj < xe; tj++ {
					wgt := xt.wgt[tj] * fy
					sum += wgt * float64(row[xt.idx[tj]])
					area += wgt
				}
			}
			if area > 0 {
				out.Pix[oy*w+ox] = float32(sum / area)
			}
		}
	}
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func bilinearResample(f, out *Frame) {
	w, h := out.W, out.H
	sx := float64(f.W-1) / float64(max(w-1, 1))
	sy := float64(f.H-1) / float64(max(h-1, 1))
	for oy := 0; oy < h; oy++ {
		fy := float64(oy) * sy
		y0 := int(fy)
		y1 := min(y0+1, f.H-1)
		wy := float32(fy - float64(y0))
		row0 := f.Pix[y0*f.W : (y0+1)*f.W]
		row1 := f.Pix[y1*f.W : (y1+1)*f.W]
		orow := out.Pix[oy*w : (oy+1)*w]
		for ox := 0; ox < w; ox++ {
			fx := float64(ox) * sx
			x0 := int(fx)
			x1 := min(x0+1, f.W-1)
			wx := float32(fx - float64(x0))
			v00 := row0[x0]
			v01 := row0[x1]
			v10 := row1[x0]
			v11 := row1[x1]
			top := v00 + (v01-v00)*wx
			bot := v10 + (v11-v10)*wx
			orow[ox] = top + (bot-top)*wy
		}
	}
}

// MAE returns the mean absolute pixel error between two equal-sized frames.
func MAE(a, b *Frame) (float64, error) {
	if !a.SameSize(b) {
		return 0, ErrSizeMismatch
	}
	var s float64
	for i, v := range a.Pix {
		s += math.Abs(float64(v - b.Pix[i]))
	}
	return s / float64(len(a.Pix)), nil
}

// MSE returns the mean squared pixel error between two equal-sized frames.
func MSE(a, b *Frame) (float64, error) {
	if !a.SameSize(b) {
		return 0, ErrSizeMismatch
	}
	var s float64
	for i, v := range a.Pix {
		d := float64(v - b.Pix[i])
		s += d * d
	}
	return s / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two equal-sized
// frames assuming a 255 peak. Identical frames yield +Inf.
func PSNR(a, b *Frame) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	//lint:ignore floateq division guard: MSE is a sum of squares, exactly zero iff the frames are identical
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// Average returns the pixel-wise mean of the given frames, which must all
// share one size. It models ideal temporal fusion over the frame set.
func Average(frames ...*Frame) (*Frame, error) {
	if len(frames) == 0 {
		return nil, ErrSizeMismatch
	}
	out := New(frames[0].W, frames[0].H)
	for _, f := range frames {
		if err := out.Add(f); err != nil {
			return nil, err
		}
	}
	out.Scale(1 / float32(len(frames)))
	return out, nil
}

// HighFreqEnergy returns the mean absolute residual of f after subtracting
// its r-radius box blur: the per-pixel high-spatial-frequency energy the
// InFrame detector keys on.
func HighFreqEnergy(f *Frame, r int) float64 {
	sm := BoxBlur(f, r)
	var s float64
	for i, v := range f.Pix {
		s += math.Abs(float64(v - sm.Pix[i]))
	}
	return s / float64(len(f.Pix))
}
