// Package parallel is the deterministic worker-pool engine behind the
// pipeline's hot paths (multiplexer rendering, channel simulation, capture
// decoding). Every primitive partitions index space, never result space:
// workers write only to caller-owned, index-addressed slots, so the merged
// output is bit-identical to a sequential run at any worker count. The
// sequential path is simply workers == 1 — the same closures run inline —
// which keeps differential testing trivial.
//
// Determinism contract:
//
//   - For/ForChunked: fn(i) (or fn(lo, hi)) must depend only on i and on
//     state that is read-only for the duration of the call, and must write
//     only to i-indexed (range-indexed) destinations. Scheduling order is
//     unspecified; results are position-addressed, so it cannot matter.
//   - Pool: tasks must be mutually independent the same way; Wait() is the
//     only ordering point.
//   - Randomness inside a task must be seeded from the task's index (e.g.
//     the capture or frame index), never from the worker identity or
//     submission order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers option to an effective worker count: n itself when
// positive, otherwise GOMAXPROCS. Use Workers=1 to force the sequential
// path.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Split divides one effective worker budget across parts concurrent
// subtasks, returning the per-subtask worker count. It exists for nested
// fan-out: an outer loop that runs parts subtasks concurrently, each of
// which owns inner worker pools, must not let every subtask resolve its own
// Workers=0 to GOMAXPROCS — parts × GOMAXPROCS goroutines oversubscribe the
// machine without producing different results (outputs are index-keyed, so
// they are bit-identical either way; only scheduling pressure changes).
//
// The returned count is floor(Resolve(workers)/parts), clamped to at least
// 1, so outer × inner never exceeds the single budget when the outer width
// is min(Resolve(workers), parts). Non-positive parts count as 1.
func Split(workers, parts int) int {
	w := Resolve(workers)
	if parts < 1 {
		parts = 1
	}
	per := w / parts
	if per < 1 {
		per = 1
	}
	return per
}

// For runs fn(i) for every i in [0, n), distributing indices across
// Resolve(workers) goroutines via a shared atomic cursor (dynamic load
// balancing: iterations of very different cost still pack well). With one
// worker (or n <= 1) it degenerates to a plain loop on the calling
// goroutine.
func For(workers, n int, fn func(i int)) {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked runs fn(lo, hi) over contiguous, non-overlapping ranges
// covering [0, n), one range per worker (static partition: best for loops
// whose per-index cost is uniform, e.g. per-row pixel work, because it
// touches the scheduler once per worker rather than once per index).
func ForChunked(workers, n int, fn func(lo, hi int)) {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		lo := g * n / w
		hi := (g + 1) * n / w
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// Pool runs independently submitted tasks on at most Resolve(workers)
// concurrent goroutines. It is the building block for producer/consumer
// pipelines (the channel simulator renders frame k while captures whose
// exposure windows are already covered run behind it). A workers value of 1
// makes Go run the task inline, preserving an exactly sequential execution.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
	seq bool
}

// NewPool returns a pool bounded to Resolve(workers) concurrent tasks.
func NewPool(workers int) *Pool {
	w := Resolve(workers)
	if w <= 1 {
		return &Pool{seq: true}
	}
	return &Pool{sem: make(chan struct{}, w)}
}

// Go submits one task. Sequential pools run it before returning; concurrent
// pools block only while all workers are busy (bounded submission keeps the
// producer from racing arbitrarily far ahead of the consumers).
func (p *Pool) Go(fn func()) {
	if p.seq {
		fn()
		return
	}
	p.sem <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (p *Pool) Wait() {
	if p.seq {
		return
	}
	p.wg.Wait()
}
