package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-5) = %d, want GOMAXPROCS", got)
	}
}

// TestForCoversEveryIndexOnce checks the index partition at several worker
// counts, including more workers than work.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 100} {
		const n = 137
		hits := make([]int32, n)
		For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, h)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("For ran a body with n=0")
	}
}

// TestForDeterministicMerge: position-addressed writes produce identical
// results at every worker count.
func TestForDeterministicMerge(t *testing.T) {
	const n = 512
	ref := make([]int, n)
	For(1, n, func(i int) { ref[i] = i*i + 7 })
	for _, w := range []int{2, 5, 16} {
		got := make([]int, n)
		For(w, n, func(i int) { got[i] = i*i + 7 })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 64} {
		const n = 100
		hits := make([]int32, n)
		ForChunked(w, n, func(lo, hi int) {
			if lo > hi {
				t.Errorf("workers=%d: inverted range [%d,%d)", w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", w, i, h)
			}
		}
	}
}

func TestForChunkedEmpty(t *testing.T) {
	ran := false
	ForChunked(4, 0, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("ForChunked ran a body with n=0")
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := NewPool(w)
		var count atomic.Int64
		for i := 0; i < 50; i++ {
			p.Go(func() { count.Add(1) })
		}
		p.Wait()
		if count.Load() != 50 {
			t.Fatalf("workers=%d: %d of 50 tasks ran", w, count.Load())
		}
	}
}

// TestPoolSequentialRunsInline: a 1-worker pool must execute tasks during
// Go, exactly like sequential code.
func TestPoolSequentialRunsInline(t *testing.T) {
	p := NewPool(1)
	done := false
	p.Go(func() { done = true })
	if !done {
		t.Fatal("sequential pool deferred the task")
	}
}

// TestSplitCapsNestedBudget pins the nested-fan-out budget: for any outer
// width chosen as min(Resolve(workers), parts), outer × Split never exceeds
// the single budget, and a starved budget still grants every subtask one
// worker (the sequential path).
func TestSplitCapsNestedBudget(t *testing.T) {
	cases := []struct {
		workers, parts, want int
	}{
		{workers: 8, parts: 4, want: 2},
		{workers: 8, parts: 8, want: 1},
		{workers: 8, parts: 3, want: 2},  // floor(8/3), 3×2 ≤ 8
		{workers: 4, parts: 16, want: 1}, // more parts than workers → sequential subtasks
		{workers: 1, parts: 5, want: 1},
		{workers: 6, parts: 0, want: 6}, // degenerate parts counts as 1
		{workers: 6, parts: -2, want: 6},
	}
	for _, c := range cases {
		got := Split(c.workers, c.parts)
		if got != c.want {
			t.Errorf("Split(%d, %d) = %d, want %d", c.workers, c.parts, got, c.want)
		}
		outer := Resolve(c.workers)
		parts := c.parts
		if parts < 1 {
			parts = 1
		}
		if outer > parts {
			outer = parts
		}
		if outer*got > Resolve(c.workers) && got != 1 {
			t.Errorf("Split(%d, %d): outer %d × inner %d oversubscribes budget %d",
				c.workers, c.parts, outer, got, Resolve(c.workers))
		}
	}
}

// TestSplitZeroResolvesGomaxprocs: Workers=0 follows Resolve's convention.
func TestSplitZeroResolvesGomaxprocs(t *testing.T) {
	if got, want := Split(0, 1), Resolve(0); got != want {
		t.Fatalf("Split(0, 1) = %d, want Resolve(0) = %d", got, want)
	}
}
