// Package inframe is a Go implementation of InFrame (Wang et al.,
// HotNets-XIII 2014): a dual-mode, full-frame visible communication system
// that multiplexes a data channel for cameras onto ordinary video content
// without disturbing the human viewer.
//
// The transmitter duplicates each video frame onto a high-refresh display
// and embeds a chessboard-keyed data frame as complementary pairs V+D, V−D
// (§3.2 of the paper): the alternation exceeds the eye's critical flicker
// frequency and fuses back to V, while a rolling-shutter camera capturing
// individual refreshes sees the pattern. Temporal smoothing (half
// square-root raised-cosine envelopes over the cycle τ) suppresses the
// phantom-array effect at data frame transitions, and a hierarchical
// Pixel/Block/GOB structure with XOR parity carries the bits (§3.3).
//
// This package is the public facade. The building blocks live in internal
// packages and are re-exported here:
//
//   - Layout, Params, Multiplexer — the transmitter;
//   - Receiver, ReceiverConfig, FrameDecode — the demultiplexer/decoder;
//   - Transmitter / MessageReceiver — a byte-message convenience layer
//     (framing, CRC, reassembly) on top of the raw data frames;
//   - Simulate* helpers — the display+camera channel simulator used for
//     experiments and examples.
//
// Everything is deterministic given explicit seeds, uses only the standard
// library, and is exercised end-to-end by the experiment harness that
// regenerates the paper's figures (see DESIGN.md and EXPERIMENTS.md).
package inframe

import (
	"fmt"

	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/impair"
	"inframe/internal/link"
	"inframe/internal/metrics"
	"inframe/internal/register"
	"inframe/internal/video"
)

// Core transmitter/receiver types (see the paper mapping in package docs).
type (
	// Layout is the Pixel/Block/GOB spatial hierarchy of a data frame.
	Layout = core.Layout
	// Params are the transmitter knobs: amplitude δ, smoothing cycle τ,
	// envelope shape, and video-to-display frame ratio.
	Params = core.Params
	// DataFrame is one payload frame: one bit per Block.
	DataFrame = core.DataFrame
	// Stream supplies successive data frames to the multiplexer.
	Stream = core.Stream
	// Multiplexer renders video + data into the displayed frame sequence.
	Multiplexer = core.Multiplexer
	// Receiver demultiplexes captured frames back into data frames.
	Receiver = core.Receiver
	// ReceiverConfig configures the receiver's geometry and detectors.
	ReceiverConfig = core.ReceiverConfig
	// FrameDecode is one decoded data frame with GOB outcomes.
	FrameDecode = core.FrameDecode
	// Frame is a grayscale image plane (float32 luminance, 0..255).
	Frame = frame.Frame
	// FramePool is a deterministic free list of frame buffers. Set it on
	// Params.Pool / CameraConfig.Pool / ReceiverConfig.Pool /
	// ChannelConfig.Pool (one shared pool end to end) for an
	// allocation-free steady-state pipeline; leave those nil for private
	// per-stage pools with unchanged semantics.
	FramePool = frame.Pool
	// FramePoolStats is the pool's traffic counters snapshot.
	FramePoolStats = frame.PoolStats
	// VideoSource yields primary-channel content frames.
	VideoSource = video.Source
	// DisplayConfig models the monitor (refresh, gamma, response).
	DisplayConfig = display.Config
	// CameraConfig models the capture side (rolling shutter, noise, …).
	CameraConfig = camera.Config
	// ChannelConfig bundles display and camera into one link.
	ChannelConfig = channel.Config
	// ChannelResult is a captured sequence with exposure timing.
	ChannelResult = channel.Result
	// GOBStats accumulates availability/error accounting.
	GOBStats = metrics.GOBStats
	// Report is the Fig. 7-style performance summary.
	Report = metrics.Report
	// CaptureMapping maps display coordinates into capture coordinates
	// (camera registration).
	CaptureMapping = core.CaptureMapping
	// Homography is the projective display→capture map of an off-axis
	// camera; set ReceiverConfig.Pose to decode through it.
	Homography = frame.Homography
	// Registration is the decode report's geometric-path diagnostics.
	Registration = core.Registration
	// StreamingReceiver is the online receiver with sliding-window
	// calibration.
	StreamingReceiver = core.StreamingReceiver
	// RGBFrame is a color frame for the presentation path.
	RGBFrame = frame.RGB
	// RGBVideoSource yields color primary-channel content.
	RGBVideoSource = video.RGBSource
	// RGBMultiplexer renders multiplexed color frames.
	RGBMultiplexer = core.RGBMultiplexer
	// ImpairConfig is the seeded channel fault-injection stack: set it on
	// ChannelConfig.Impair to corrupt the simulated link with clock drift,
	// exposure jitter, capture drop/duplication, lighting and sensor faults.
	ImpairConfig = impair.Config
	// DecodeReport is the receiver's graceful-degradation report: erasure
	// causes, link-quality timeline, gap and resync accounting (see
	// Receiver.DecodeCapturesReport).
	DecodeReport = core.DecodeReport
	// CaptureQuality is one entry of the decode report's quality timeline.
	CaptureQuality = core.CaptureQuality
	// ErasureCause classifies why a GOB failed to deliver data.
	ErasureCause = core.ErasureCause
	// DegradationStats accumulates decode reports across runs.
	DegradationStats = metrics.DegradationStats
)

// Erasure causes, ordered by severity (see core.ErasureCause).
const (
	CauseNone          = core.CauseNone
	CauseParity        = core.CauseParity
	CauseLowConfidence = core.CauseLowConfidence
	CauseNoSwing       = core.CauseNoSwing
	CauseNoSignal      = core.CauseNoSignal
	CauseNoCapture     = core.CauseNoCapture
)

// Re-exported constructors and helpers.
var (
	// PaperLayout is the paper's 1920×1080, p=4, 50×30-Block geometry.
	PaperLayout = core.PaperLayout
	// ScaledPaperLayout divides the paper geometry by 1, 2 or 4.
	ScaledPaperLayout = core.ScaledPaperLayout
	// DefaultParams is the paper's recommended operating point (δ=20, τ=12).
	DefaultParams = core.DefaultParams
	// NewMultiplexer builds the transmitter.
	NewMultiplexer = core.NewMultiplexer
	// NewFramePool builds an empty frame pool (see FramePool).
	NewFramePool = frame.NewPool
	// NewReceiver builds the receiver.
	NewReceiver = core.NewReceiver
	// DefaultReceiverConfig matches a receiver to transmitter parameters.
	DefaultReceiverConfig = core.DefaultReceiverConfig
	// NewRandomStream is the paper's seeded pseudo-random payload.
	NewRandomStream = core.NewRandomStream
	// FromDataBits packs payload bits into a parity-protected data frame.
	FromDataBits = core.FromDataBits
	// EstimatePhase recovers data-frame timing from captures alone.
	EstimatePhase = core.EstimatePhase
	// Simulate runs a multiplexer through the simulated channel.
	Simulate = channel.Simulate
	// DefaultChannelConfig is the paper-like simulated link.
	DefaultChannelConfig = channel.DefaultConfig
	// ComputeReport derives throughput/availability/error from stats.
	ComputeReport = metrics.Compute
	// Calibrate blindly solves camera registration from captures.
	Calibrate = register.Calibrate
	// CalibrateProjective blindly solves full projective registration
	// (screen quad detection + DLT homography) from captures.
	CalibrateProjective = register.CalibrateProjective
	// SolveHomography computes the homography mapping four source corners
	// to four destination corners (normalized DLT).
	SolveHomography = frame.SolveHomography
	// WarpInto inverse-warps one frame into another through a homography.
	WarpInto = frame.WarpInto
	// PoseHomography models a pinhole camera at the given tilt/roll/distance
	// viewing a frontal w×h plane — the ground-truth map of the camera-pose
	// impairment stage.
	PoseHomography = impair.PoseHomography
	// ErrDegenerateQuad is the typed rejection of collinear or coincident
	// quad corners in SolveHomography.
	ErrDegenerateQuad = frame.ErrDegenerateQuad
	// NewStreamingReceiver builds the online receiver.
	NewStreamingReceiver = core.NewStreamingReceiver
	// NewRGBMultiplexer builds the color transmitter.
	NewRGBMultiplexer = core.NewRGBMultiplexer
)

// Video sources for the primary channel.
var (
	// GrayVideo is the paper's bright pure-gray input (RGB 180).
	GrayVideo = video.Gray
	// DarkGrayVideo is the paper's dark-gray input (RGB 127).
	DarkGrayVideo = video.DarkGray
	// SunRiseVideo is the procedural stand-in for the sun-rising clip.
	SunRiseVideo = video.NewSunRise
	// TextCardVideo renders an announcement-card scene.
	TextCardVideo = video.NewTextCard
	// MovingBarsVideo renders drifting vertical bars.
	MovingBarsVideo = video.NewMovingBars
)

// scrambleSeed keys the payload whitening shared by Transmitter and
// MessageReceiver; see core.ScrambleBits for why whitening is load-bearing.
const scrambleSeed = 0x1f7a

// linkParityBytes returns the per-frame Reed–Solomon parity budget for a
// layout: a quarter of the frame's byte capacity (mirroring the 25% the XOR
// scheme spends on parity Blocks), floored so tiny layouts still correct
// something. On layouts too small for the 4-byte floor the budget is clamped
// to what the segmenter can fit next to a packet; layouts that cannot hold
// even the 2-byte RS minimum are rejected here with a clear error rather than
// deep inside link.NewSegmenterRS.
func linkParityBytes(l Layout) (int, error) {
	frameBits := l.DataBitsPerFrame()
	parity := frameBits / 8 / 4
	if parity < 4 {
		parity = 4
	}
	if max := link.MaxParityBytes(frameBits); parity > max {
		parity = max
	}
	if parity < 2 {
		return 0, fmt.Errorf("inframe: layout carries %d data bits per frame, too few for a packet header plus RS parity (needs %d)",
			frameBits, (link.HeaderSize+1+2)*8)
	}
	return parity, nil
}

// Transmitter sends a byte message over the secondary channel: the message
// is segmented into packets (one per data frame), each packet Reed–Solomon
// coded across its frame, whitened, wrapped with GOB parity and multiplexed
// onto the video.
type Transmitter struct {
	mux    *core.Multiplexer
	stream core.Stream
	seg    *link.RSSegmenter
	pkts   int
}

// NewTransmitter builds a message transmitter over the given video source.
// The message must be non-empty; it is repeated cyclically so receivers can
// join at any time (data frame i carries packet i mod packets).
func NewTransmitter(p Params, src VideoSource, msg []byte) (*Transmitter, error) {
	parity, err := linkParityBytes(p.Layout)
	if err != nil {
		return nil, err
	}
	return NewTransmitterParity(p, src, msg, parity)
}

// NewTransmitterParity is NewTransmitter with an explicit per-frame RS
// parity budget (bytes). Spend more parity on hostile content — motion and
// saturation cost GOBs, and the frame decodes only while
// erased bytes ≤ parity. The receiver must be built with the same budget.
func NewTransmitterParity(p Params, src VideoSource, msg []byte, parityBytes int) (*Transmitter, error) {
	seg, err := link.NewSegmenterRS(p.Layout.DataBitsPerFrame(), parityBytes)
	if err != nil {
		return nil, fmt.Errorf("inframe: %w", err)
	}
	pkts, err := seg.Segment(msg)
	if err != nil {
		return nil, fmt.Errorf("inframe: %w", err)
	}
	frames := make([]*core.DataFrame, len(pkts))
	for i, pkt := range pkts {
		bits, err := seg.FrameBits(pkt)
		if err != nil {
			return nil, fmt.Errorf("inframe: %w", err)
		}
		padded := make([]bool, p.Layout.DataBitsPerFrame())
		copy(padded, bits)
		df, err := core.FromDataBits(p.Layout, padded)
		if err != nil {
			return nil, fmt.Errorf("inframe: %w", err)
		}
		frames[i] = df
	}
	stream := &core.ScrambledStream{
		Inner: &core.FixedStream{Frames: frames},
		Seed:  scrambleSeed,
	}
	mux, err := core.NewMultiplexer(p, src, stream)
	if err != nil {
		return nil, fmt.Errorf("inframe: %w", err)
	}
	return &Transmitter{mux: mux, stream: stream, seg: seg, pkts: len(pkts)}, nil
}

// Packets returns how many data frames one full message cycle occupies.
func (t *Transmitter) Packets() int { return t.pkts }

// Multiplexer exposes the underlying frame renderer.
func (t *Transmitter) Multiplexer() *core.Multiplexer { return t.mux }

// Stream exposes the whitened data frame stream, for callers that render
// the same payload through another multiplexer (e.g. the color path).
func (t *Transmitter) Stream() Stream { return t.stream }

// DisplayFramesPerCycle returns the displayed frames needed to transmit the
// message once.
func (t *Transmitter) DisplayFramesPerCycle() int {
	return t.pkts * t.mux.Params().Tau
}

// MessageReceiver reassembles a byte message from decoded data frames.
type MessageReceiver struct {
	rcv *core.Receiver
	seg *link.RSSegmenter
	rs  *link.Reassembler
}

// NewMessageReceiver builds the receive side for the given configuration,
// using the default parity budget (see NewTransmitter).
func NewMessageReceiver(cfg ReceiverConfig) (*MessageReceiver, error) {
	parity, err := linkParityBytes(cfg.Layout)
	if err != nil {
		return nil, err
	}
	return NewMessageReceiverParity(cfg, parity)
}

// NewMessageReceiverParity builds the receive side with an explicit RS
// parity budget matching the transmitter's.
func NewMessageReceiverParity(cfg ReceiverConfig, parityBytes int) (*MessageReceiver, error) {
	rcv, err := core.NewReceiver(cfg)
	if err != nil {
		return nil, fmt.Errorf("inframe: %w", err)
	}
	seg, err := link.NewSegmenterRS(cfg.Layout.DataBitsPerFrame(), parityBytes)
	if err != nil {
		return nil, fmt.Errorf("inframe: %w", err)
	}
	return &MessageReceiver{rcv: rcv, seg: seg, rs: link.NewReassembler()}, nil
}

// Receiver exposes the underlying physical-layer receiver.
func (m *MessageReceiver) Receiver() *core.Receiver { return m.rcv }

// Ingest decodes a captured sequence and feeds every decoded data frame to
// the reassembler, ignoring frames whose link CRC fails. It returns how
// many new packets were accepted.
//
// The physical receiver calibrates each Block from the temporal variation
// of its energy, so Ingest needs on the order of 15 or more data frames
// (about 1.5 s at the default τ=12) before decoding becomes reliable; feed
// it the whole capture window rather than frame by frame.
func (m *MessageReceiver) Ingest(res *ChannelResult, nDataFrames int) int {
	decoded := m.rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDataFrames)
	fresh := 0
	for _, fd := range decoded {
		if fd.Captures == 0 {
			continue
		}
		bits := core.ScrambleBits(fd.Bits.DataBits(), scrambleSeed, fd.Index)
		pkt, err := m.seg.DecodeFrame(bits, byteErasures(fd))
		if err != nil {
			continue
		}
		ok, err := m.rs.OfferPacket(pkt)
		if err == nil && ok {
			fresh++
		}
	}
	return fresh
}

// byteErasures maps a decoded frame's GOB outcomes to the byte positions of
// its link codeword that cannot be trusted: a byte is erased when any GOB
// contributing to its bits was unavailable or failed parity.
func byteErasures(fd *core.FrameDecode) []int {
	bitsPerGOB := fd.Bits.Layout.BlocksPerGOB() - 1
	nBytes := fd.Bits.Layout.DataBitsPerFrame() / 8
	var out []int
	for b := 0; b < nBytes; b++ {
		g0 := (b * 8) / bitsPerGOB
		g1 := (b*8 + 7) / bitsPerGOB
		for g := g0; g <= g1 && g < len(fd.GOBs); g++ {
			if !fd.GOBs[g].Available || !fd.GOBs[g].ParityOK {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// Complete reports whether the full message has arrived.
func (m *MessageReceiver) Complete() bool { return m.rs.Complete() }

// Missing lists outstanding packet sequence numbers.
func (m *MessageReceiver) Missing() []uint16 { return m.rs.Missing() }

// Message returns the reassembled bytes once Complete.
func (m *MessageReceiver) Message() ([]byte, error) { return m.rs.Message() }
