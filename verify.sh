#!/usr/bin/env bash
# Tier-1 verification gate (see README.md § Testing). Every change must pass
# this before it lands: static checks, a full build, the complete test suite
# under the race detector (the worker pools in internal/parallel make data
# races a correctness class, not a theoretical one), and one iteration of the
# sequential-vs-parallel benchmarks as a smoke test.
#
# Usage: ./verify.sh [-short]
#   -short  gate the race run on `go test -short` (skips the long
#           full-pipeline experiment suites; use for quick iteration).
set -euo pipefail
cd "$(dirname "$0")"

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed: $unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race $short ./... =="
# The experiment suites run the full pipeline repeatedly; under the race
# detector they need more than the default 10m per-package budget.
go test -race -timeout 60m $short ./...

echo "== benchmarks (1 iteration smoke) =="
go test -run '^$' -bench 'EndToEnd|DecodeCaptures' -benchtime=1x .

echo "verify: OK"
