#!/usr/bin/env bash
# Tier-1 verification gate (see README.md § Testing). Every change must pass
# this before it lands: static checks (gofmt, go vet, and the repo's own
# inframe-lint invariant suite with per-analyzer timings), a full build,
# the complete test suite
# under the race detector (the worker pools in internal/parallel make data
# races a correctness class, not a theoretical one), a coverage floor on
# internal/analysis (the lint gate's own engine), the steady-state
# allocation tests without instrumentation (so AllocsPerRun sees the real
# counts the benchmark baselines record), the fixed-point kernel identity
# suite under -race (bit-identity and error-bound pins for the int32
# kernels and the fused renderer, DESIGN.md §5j), the fault-injection robustness
# matrix under -race plus a short fuzz smoke of the decode entry points,
# the camera-pose gate under -race (blind projective calibration rows,
# frontal bit-identity, a coverage floor on internal/register and fuzz
# smokes of the DLT solve and the inverse warp),
# the broadcast-fleet determinism suite under -race (N concurrent
# receivers sharing one pool and one display), one iteration of the
# sequential-vs-parallel benchmarks as a smoke test, and the
# inframe-benchdiff regression gate against the committed BENCH_*.json
# baseline (+15% ns/op tolerance, allocs/op gated alongside; a slowdown
# fails only when it survives both the raw and the machine-speed-
# calibrated reading, so container speed drift cannot flake the gate).
#
# Usage: ./verify.sh [-short]
#   -short  gate the race run on `go test -short` (skips the long
#           full-pipeline experiment suites) and skip the robustness,
#           fleet, benchmark smoke and benchdiff stages entirely; use
#           for quick iteration.
#
# Each stage prints its wall-clock time on completion so slow stages are
# visible; a summary repeats all of them — including skipped stages — at
# the end.
set -euo pipefail
cd "$(dirname "$0")"

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

timings=()

# stage <name> <command...> — run one gate stage, timing it.
stage() {
	local name="$1"
	shift
	echo "== $name =="
	local t0=$SECONDS
	"$@"
	local dt=$((SECONDS - t0))
	timings+=("$(printf '%4ds  %s' "$dt" "$name")")
	echo "-- $name: ${dt}s"
}

# skip <name> — record a stage the current mode does not run.
skip() {
	local name="$1"
	echo "== $name (skipped: -short) =="
	timings+=("$(printf '%5s  %s (skipped)' '-' "$name")")
}

check_gofmt() {
	local unformatted
	unformatted=$(gofmt -l .)
	if [[ -n "$unformatted" ]]; then
		echo "gofmt needed: $unformatted" >&2
		return 1
	fi
}

run_lint() {
	# -timings prints the per-analyzer wall-clock attribution (including
	# the shared module-summary fixpoint as its own row) to stderr, so a
	# slow analyzer is visible in the gate log, not just the stage total.
	go run ./cmd/inframe-lint -timings ./...
}

run_tests() {
	# The experiment suites run the full pipeline repeatedly; under the race
	# detector they need more than the default 10m per-package budget.
	go test -race -timeout 60m $short ./...
}

run_analysis_cover() {
	# The analysis package is the lint gate's own engine: hold its test
	# coverage above a floor so analyzers cannot land without fixtures.
	# The floor respects -short, where the module-wide self-lint test
	# (the single biggest coverage contributor) is skipped.
	local floor=88
	if [[ -n "$short" ]]; then
		floor=78
	fi
	local out pct
	out=$(go test $short -cover ./internal/analysis/)
	echo "$out"
	pct=$(sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' <<<"$out")
	if [[ -z "$pct" ]]; then
		echo "no coverage figure in go test output" >&2
		return 1
	fi
	echo "internal/analysis coverage ${pct}% (floor ${floor}%)"
	awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p + 0 >= f) ? 0 : 1 }'
}

run_alloc_tests() {
	# Uninstrumented rerun of the steady-state allocation tests: they pass
	# under -race too, but only this run measures the true allocs/op that
	# the BENCH_*.json baselines pin.
	go test -run 'TestSteadyStateFrameBufferAllocs|TestMultiplexerRenderAllocs|TestReceiverMeasureAllocs' -count=1 .
}

run_kernels() {
	# The fixed-point identity gate in isolation under the race detector:
	# the int32 kernels' bit-identity/error-bound pins (internal/fixed) and
	# the fused pair-aware renderer's equivalence to the direct
	# clone+add+clamp formulation at several worker counts (DESIGN.md §5j).
	go test -race -count=1 \
		-run 'TestFixedPointBitIdentity|TestGammaErrorBound|TestWindowSumsMatchesNaive|TestRowAbsEnergyMatchesNaive|TestIsIntegral8' \
		./internal/fixed/
	go test -race -count=1 \
		-run 'TestFusedRenderMatchesReference|TestIncrementalRenderMatchesFresh|TestRGBFusedMatchesCloneAdd|TestDeltaCacheFrozenPool' \
		./internal/core/
	go test -race -count=1 \
		-run 'TestAddLumaDeltaOfMatchesCloneAdd|TestAddLumaDeltaOfSizeCheck' \
		./internal/frame/
}

run_robustness() {
	# The fault-injection gate in isolation: the deterministic impairment
	# matrix (pinned availability/BER bounds, worker invariance, clean-path
	# bit-identity) rerun under the race detector, then a short
	# coverage-guided shake of the two decode entry points. The fuzz smokes
	# extend the committed corpora, they do not replace a long fuzz run.
	go test -race -count=1 -run 'TestRobustnessMatrix|TestZeroImpairConfigIsCleanPath|TestImpairedDegradationAccounting' .
	go test -run '^$' -fuzz '^FuzzDecodeCaptures$' -fuzztime 10s ./internal/core
	go test -run '^$' -fuzz '^FuzzGOBParity$' -fuzztime 10s ./internal/core
}

run_register_cover() {
	# The registration package carries the blind geometric calibration the
	# pose experiments depend on: hold its coverage above a floor so solver
	# changes cannot land without geometry fixtures.
	local floor=85
	local out pct
	out=$(go test -cover ./internal/register/)
	echo "$out"
	pct=$(sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' <<<"$out")
	if [[ -z "$pct" ]]; then
		echo "no coverage figure in go test output" >&2
		return 1
	fi
	echo "internal/register coverage ${pct}% (floor ${floor}%)"
	awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p + 0 >= f) ? 0 : 1 }'
}

run_pose() {
	# The camera-pose gate in isolation: the pose rows of the robustness
	# matrix (blind projective calibration + rectified decode, pinned
	# availability windows and BER ceilings, worker invariance at 1/2/8)
	# and the frontal bit-identity contract, all under the race detector,
	# then short coverage-guided shakes of the two geometry entry points —
	# the DLT solve on fuzzed correspondences and the inverse warp on
	# fuzzed homographies.
	go test -race -count=1 -run 'TestRobustnessMatrix/pose|TestFrontalPoseIsCleanPath' .
	go test -race -count=1 ./internal/register/
	go test -run '^$' -fuzz '^FuzzRegister$' -fuzztime 10s ./internal/register
	go test -run '^$' -fuzz '^FuzzWarpInto$' -fuzztime 10s ./internal/frame
}

run_fleet() {
	# The broadcast-fleet gate in isolation under the race detector: a
	# small-N fleet is the repo's richest cross-goroutine surface (nested
	# fan-out, one shared pool, one display read by every receiver), and
	# its tests pin worker invariance, the render-once pool accounting,
	# the concurrency-budget bit-identity and the late-start all-erasure
	# path.
	go test -race -count=1 ./internal/fleet/
}

run_bench_smoke() {
	go test -run '^$' -bench 'EndToEnd|DecodeCaptures|Fleet' -benchtime=1x .
}

run_benchdiff() {
	go run ./cmd/inframe-benchdiff -tolerance 0.15
}

stage "gofmt" check_gofmt
stage "go vet ./..." go vet ./...
stage "go build ./..." go build ./...
stage "inframe-lint ./..." run_lint
stage "go test -race $short ./..." run_tests
stage "internal/analysis coverage floor" run_analysis_cover
stage "internal/register coverage floor" run_register_cover
stage "steady-state alloc tests" run_alloc_tests
stage "fixed-point kernel identity (race)" run_kernels
if [[ -n "$short" ]]; then
	skip "robustness matrix + fuzz smoke"
	skip "pose robustness (race)"
	skip "fleet determinism (race)"
	skip "benchmarks (1 iteration smoke)"
	skip "inframe-benchdiff"
else
	stage "robustness matrix + fuzz smoke" run_robustness
	stage "pose robustness (race)" run_pose
	stage "fleet determinism (race)" run_fleet
	stage "benchmarks (1 iteration smoke)" run_bench_smoke
	stage "inframe-benchdiff" run_benchdiff
fi

echo "== stage timings =="
for t in "${timings[@]}"; do
	echo "$t"
done
echo "verify: OK"
