// Real footage: ingest a YUV4MPEG2 clip as the primary channel, multiplex a
// message onto it in color, export the multiplexed stream back to .y4m (for
// any standard player), and decode the message from that very file.
//
//	go run ./examples/realfootage
//
// The example synthesizes its own input clip first (the environment has no
// media files), which also demonstrates the export path; point `-in` at any
// real .y4m to use actual footage.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"inframe"
	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/video"
	"inframe/internal/y4m"
)

func main() {
	in := flag.String("in", "", "input .y4m clip (synthesized if empty)")
	flag.Parse()

	layout, err := inframe.ScaledPaperLayout(4) // keep the demo snappy
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "inframe-footage")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	clipPath := *in
	if clipPath == "" {
		clipPath = filepath.Join(dir, "input.y4m")
		if err := synthesizeClip(clipPath, layout.FrameW, layout.FrameH); err != nil {
			log.Fatal(err)
		}
		fmt.Println("synthesized input clip:", clipPath)
	}

	clip, err := video.OpenY4M(clipPath)
	if err != nil {
		log.Fatal(err)
	}
	w, h := clip.Size()
	if w != layout.FrameW || h != layout.FrameH {
		log.Fatalf("clip is %dx%d; this demo layout needs %dx%d", w, h, layout.FrameW, layout.FrameH)
	}

	// Multiplex the message onto the footage, in color.
	msg := "subtitle track riding on real footage"
	params := inframe.DefaultParams(layout)
	params.Tau = 8
	// Footage with saturated regions (the sun, its halo) loses those GOBs
	// outright, so spend well over half the frame on Reed–Solomon parity.
	const parityBytes = 90
	tx, err := inframe.NewTransmitterParity(params, video.Luma{Src: clip}, []byte(msg), parityBytes)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := core.NewRGBMultiplexer(params, clip, tx.Stream())
	if err != nil {
		log.Fatal(err)
	}

	outPath := filepath.Join(dir, "multiplexed.y4m")
	fh, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	wr, err := y4m.NewWriter(fh, y4m.Header{
		W: layout.FrameW, H: layout.FrameH, FPSNum: 120, FPSDen: 1, ColorSpace: y4m.C420,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := 16 * tx.DisplayFramesPerCycle()
	for k := 0; k < n; k++ {
		f, err := cm.FrameRGB(k)
		if err != nil {
			log.Fatal(err)
		}
		if err := wr.WriteFrame(f); err != nil {
			log.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d multiplexed color frames to %s (play with: mpv %s)\n", n, outPath, outPath)

	// Decode straight from the file's luma planes.
	rf, err := os.Open(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	rd, err := y4m.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	var caps []*frame.Frame
	var times []float64
	for i := 0; ; i++ {
		y, _, _, err := rd.ReadFrameYCbCr()
		if err != nil {
			break
		}
		caps = append(caps, y)
		times = append(times, float64(i)/120)
	}
	rcfg := inframe.DefaultReceiverConfig(params, layout.FrameW, layout.FrameH)
	rx, err := inframe.NewMessageReceiverParity(rcfg, parityBytes)
	if err != nil {
		log.Fatal(err)
	}
	rx.Ingest(&inframe.ChannelResult{Captures: caps, Times: times, Exposure: 1.0 / 120}, n/params.Tau)
	if !rx.Complete() {
		log.Fatalf("message incomplete; missing %v", rx.Missing())
	}
	got, err := rx.Message()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded from the .y4m: %q\n", got)
}

// synthesizeClip writes a short color clip standing in for real footage.
func synthesizeClip(path string, w, h int) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	wr, err := y4m.NewWriter(fh, y4m.Header{W: w, H: h, FPSNum: 30, FPSDen: 1, ColorSpace: y4m.C420})
	if err != nil {
		return err
	}
	src := video.NewColorSunRise(w, h, 3)
	for i := 0; i < 30; i++ {
		if err := wr.WriteFrame(src.FrameRGB(i)); err != nil {
			return err
		}
	}
	if err := wr.Flush(); err != nil {
		return err
	}
	return fh.Close()
}
