// Quickstart: send a text message over the InFrame dual-mode channel and
// receive it with the simulated rolling-shutter camera.
//
//	go run ./examples/quickstart
//
// The walkthrough mirrors the paper's Fig. 1: the viewer sees ordinary gray
// video; the camera sees data.
package main

import (
	"fmt"
	"log"

	"inframe"
)

func main() {
	// 1. Geometry: the paper's 50×30-Block layout at half scale
	//    (960×540 display, 640×360 camera).
	layout, err := inframe.ScaledPaperLayout(2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Transmitter: paper parameters (δ=20, τ=12) over pure gray video.
	params := inframe.DefaultParams(layout)
	video := inframe.GrayVideo(layout.FrameW, layout.FrameH)
	tx, err := inframe.NewTransmitter(params, video, []byte("Hello from the full frame!"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("message occupies %d data frame(s); each data frame carries %d payload bits\n",
		tx.Packets(), layout.DataBitsPerFrame())

	// 3. Channel: 120 Hz display into a 30 FPS rolling-shutter camera.
	cfg := inframe.DefaultChannelConfig(640, 360)
	cfg.Camera.BlurRadius = 0 // sub-pixel at half scale
	nDisplay := 16 * tx.DisplayFramesPerCycle()
	result, err := inframe.Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("displayed %d frames (%.1f s), captured %d camera frames\n",
		nDisplay, float64(nDisplay)/cfg.Display.RefreshHz, len(result.Captures))

	// 4. Receiver: decode the captures and reassemble the message.
	rcfg := inframe.DefaultReceiverConfig(params, 640, 360)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rx, err := inframe.NewMessageReceiver(rcfg)
	if err != nil {
		log.Fatal(err)
	}
	rx.Ingest(result, nDisplay/params.Tau)
	if !rx.Complete() {
		log.Fatalf("message incomplete; missing packets %v", rx.Missing())
	}
	msg, err := rx.Message()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received: %q\n", msg)
}
