// Flicker study: run the simulated 8-person panel of the paper's §4
// subjective assessment on a few operating points and print their ratings —
// the experiment behind Fig. 6.
//
//	go run ./examples/flickerstudy
package main

import (
	"fmt"
	"log"
	"os"

	"inframe/internal/experiments"
)

func main() {
	s := experiments.DefaultSetup()
	s.FlickerSeconds = 0.8

	fmt.Println("Simulated user study: 8 observers rate flicker 0 (none) .. 4 (strong).")
	fmt.Println()

	fmt.Println("Naive frame-insertion designs vs InFrame (Fig. 3 / §3.1):")
	naiveRows, err := experiments.NaiveDesigns(s)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteNaive(os.Stdout, naiveRows)
	fmt.Println()

	fmt.Println("Flicker vs waveform amplitude δ and smoothing cycle τ (Fig. 6 right):")
	ampRows, err := experiments.FlickerVsAmplitude(s)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteFlicker(os.Stdout, ampRows)
	fmt.Println()
	fmt.Println("Reading: δ≤20 with τ≥10 stays in the satisfactory band (≤1),")
	fmt.Println("matching the paper's recommendation; larger amplitudes need longer cycles.")
}
