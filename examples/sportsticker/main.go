// Sports ticker: the paper's live-streaming application — commentary
// updates ride the secondary channel under moving video content, and a
// camera that joins mid-broadcast still reassembles each update thanks to
// cyclic retransmission and sequence numbers.
//
//	go run ./examples/sportsticker
package main

import (
	"fmt"
	"log"

	"inframe"
)

func main() {
	layout, err := inframe.ScaledPaperLayout(2)
	if err != nil {
		log.Fatal(err)
	}
	// Moving content: wide, low-contrast drifting bands stand in for a slow
	// camera pan over a pitch. Moving edges cost the secondary channel
	// capacity — the lower the contrast of the motion, the less the
	// Reed–Solomon parity has to absorb.
	feed := inframe.MovingBarsVideo(layout.FrameW, layout.FrameH, 12*layout.BlockPx(), 0.75)
	feed.Lo, feed.Hi = 115, 150

	updates := []string{
		"GOAL! 1-0, 23' — header from the corner",
		"Yellow card, 31' — late challenge in midfield",
		"Half time: 1-0; shots 7-2, possession 58%",
	}

	params := inframe.DefaultParams(layout)
	cfg := inframe.DefaultChannelConfig(640, 360)
	cfg.Camera.BlurRadius = 0
	// Motion-heavy content loses the Blocks a passing edge touches, so the
	// ticker spends more than half its frame on Reed–Solomon parity.
	const parityBytes = 80

	for i, update := range updates {
		tx, err := inframe.NewTransmitterParity(params, feed, []byte(update), parityBytes)
		if err != nil {
			log.Fatal(err)
		}
		nDisplay := 16 * tx.DisplayFramesPerCycle()
		result, err := inframe.Simulate(tx.Multiplexer(), nDisplay, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// A viewer joining now: a fresh receiver per update.
		rcfg := inframe.DefaultReceiverConfig(params, 640, 360)
		rcfg.Exposure = cfg.Camera.Exposure
		rcfg.ReadoutTime = cfg.Camera.ReadoutTime
		rx, err := inframe.NewMessageReceiverParity(rcfg, parityBytes)
		if err != nil {
			log.Fatal(err)
		}
		accepted := rx.Ingest(result, nDisplay/params.Tau)
		status := "incomplete"
		var text []byte
		if rx.Complete() {
			text, err = rx.Message()
			if err != nil {
				log.Fatal(err)
			}
			status = "ok"
		}
		fmt.Printf("update %d: %d packets accepted, %s\n", i+1, accepted, status)
		if status == "ok" {
			fmt.Printf("  ticker: %s\n", text)
		} else {
			fmt.Printf("  missing packets: %v (keep watching)\n", rx.Missing())
		}
	}
}
