// Ad coupon: the paper's §5 motivating application — an advertisement plays
// on screen while a coupon link rides the secondary channel; a viewer's
// phone camera picks up the link without any barcode cluttering the ad.
//
//	go run ./examples/adcoupon
//
// The ad is a text-card scene (banner + copy lines); the coupon URL is
// embedded full-frame and recovered through the simulated camera. The
// example also reports what a corner QR code would have cost in screen
// area for comparable capacity.
package main

import (
	"fmt"
	"log"

	"inframe"
	"inframe/internal/barcode"
)

func main() {
	layout, err := inframe.ScaledPaperLayout(2)
	if err != nil {
		log.Fatal(err)
	}
	coupon := "https://example.com/coupon?campaign=sunrise&code=HOTNETS-14&discount=25%25"

	// The primary channel: an announcement card the viewer reads.
	ad := inframe.TextCardVideo(layout.FrameW, layout.FrameH, 7)

	params := inframe.DefaultParams(layout)
	tx, err := inframe.NewTransmitter(params, ad, []byte(coupon))
	if err != nil {
		log.Fatal(err)
	}

	cfg := inframe.DefaultChannelConfig(640, 360)
	cfg.Camera.BlurRadius = 0
	nDisplay := 16 * tx.DisplayFramesPerCycle()
	result, err := inframe.Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		log.Fatal(err)
	}

	rcfg := inframe.DefaultReceiverConfig(params, 640, 360)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rx, err := inframe.NewMessageReceiver(rcfg)
	if err != nil {
		log.Fatal(err)
	}
	rx.Ingest(result, nDisplay/params.Tau)
	if !rx.Complete() {
		log.Fatalf("coupon incomplete; missing %v — point the camera a little longer", rx.Missing())
	}
	got, err := rx.Message()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewer sees: the advertisement, full frame, unmodified to the eye\n")
	fmt.Printf("camera sees: %q\n", got)

	// What the conventional design would have cost.
	qr := barcode.DefaultConfig(layout.FrameW, layout.FrameH)
	fmt.Printf("\nconventional corner barcode for comparison:\n")
	fmt.Printf("  screen area surrendered: %.1f%%\n", 100*qr.AreaFraction(layout.FrameW, layout.FrameH))
	fmt.Printf("  raw rate at 120 Hz:      %.2f kbps (visible, distracting)\n", qr.RawBps(120)/1000)
	fmt.Printf("  InFrame secondary rate:  %.2f kbps (invisible, full frame)\n",
		float64(layout.DataBitsPerFrame())*120/float64(params.Tau)/1000)
}
