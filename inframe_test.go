package inframe

import (
	"bytes"
	"testing"
)

// testLayout is a compact geometry shared by the facade tests: 24×16 Blocks
// carry 288 payload bits per frame, enough for one link packet.
func testLayout() Layout {
	return Layout{
		FrameW: 192, FrameH: 128,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 24, BlocksY: 16,
	}
}

// quietChannel returns a benign simulated link at the given capture size.
func quietChannel(capW, capH int) ChannelConfig {
	cfg := DefaultChannelConfig(capW, capH)
	cfg.Camera.ReadoutTime = 0
	cfg.Camera.NoiseSigma = 0.5
	cfg.Camera.BlurRadius = 0
	cfg.Display.ResponseTime = 0
	return cfg
}

func TestPaperLayoutExported(t *testing.T) {
	l := PaperLayout()
	if l.DataBitsPerFrame() != 1125 {
		t.Fatalf("paper layout carries %d bits", l.DataBitsPerFrame())
	}
	if _, err := ScaledPaperLayout(2); err != nil {
		t.Fatal(err)
	}
}

// TestMessageRoundTrip sends a byte message through the full simulated
// system — multiplexer, display, rolling-shutter camera, receiver, link
// reassembly — and checks it arrives intact.
func TestMessageRoundTrip(t *testing.T) {
	l := testLayout()
	p := DefaultParams(l)
	p.Tau = 8
	msg := []byte("hello, InFrame!")
	tx, err := NewTransmitter(p, GrayVideo(l.FrameW, l.FrameH), msg)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Packets() != 1 {
		t.Fatalf("short message needs %d packets, want 1", tx.Packets())
	}
	// Transmit enough cycles for the receiver's per-Block calibration:
	// it needs ~15+ data frames so whitening toggles every Block.
	nDisplay := 16*tx.DisplayFramesPerCycle() + 24
	cfg := quietChannel(l.FrameW, l.FrameH)
	res, err := Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rx, err := NewMessageReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rx.Ingest(res, nDisplay/p.Tau)
	if !rx.Complete() {
		t.Fatalf("message incomplete; missing %v", rx.Missing())
	}
	got, err := rx.Message()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

// TestMultiPacketMessage exercises segmentation across several data frames.
func TestMultiPacketMessage(t *testing.T) {
	big := testLayout()
	pb := DefaultParams(big)
	pb.Tau = 8
	if _, err := NewTransmitter(pb, GrayVideo(big.FrameW, big.FrameH), nil); err == nil {
		t.Fatal("empty message accepted")
	}
	pb.Tau = 8
	msg := bytes.Repeat([]byte("0123456789abcdef"), 6) // 96 bytes
	tx, err := NewTransmitter(pb, GrayVideo(big.FrameW, big.FrameH), msg)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Packets() < 2 {
		t.Fatalf("96-byte message should need >= 2 packets, got %d", tx.Packets())
	}
	nDisplay := 3*tx.DisplayFramesPerCycle() + 24
	cfg := quietChannel(big.FrameW, big.FrameH)
	res, err := Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultReceiverConfig(pb, big.FrameW, big.FrameH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rx, err := NewMessageReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rx.Ingest(res, nDisplay/pb.Tau)
	if !rx.Complete() {
		t.Fatalf("message incomplete; missing %v", rx.Missing())
	}
	got, _ := rx.Message()
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-packet message corrupted")
	}
}

func TestTransmitterRejectsTinyLayout(t *testing.T) {
	// 6×4 blocks → 18 data bits per frame: cannot hold a packet header.
	tiny := Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
	p := DefaultParams(tiny)
	if _, err := NewTransmitter(p, GrayVideo(48, 32), []byte("x")); err == nil {
		t.Fatal("tiny layout accepted")
	}
}

func TestFacadeReportPlumbing(t *testing.T) {
	l := PaperLayout()
	stats := &GOBStats{Frames: 10, Total: 3750, Available: 3600, Erroneous: 36}
	rep := ComputeReport(stats, l, 10, 120)
	if rep.RawBps != 13500 {
		t.Fatalf("raw = %v", rep.RawBps)
	}
	if rep.ThroughputBps <= 0 || rep.ThroughputBps > rep.RawBps {
		t.Fatalf("throughput = %v", rep.ThroughputBps)
	}
}
