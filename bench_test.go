package inframe

// Benchmark harness: one benchmark per paper artifact (Fig. 3, 5, 6, 7 and
// the ablations), each running the same experiment code that regenerates
// the figure, plus micro-benchmarks for the pipeline's hot stages. Table
// benchmarks report their headline metric via b.ReportMetric so a bench run
// doubles as a figure regeneration at reduced duration; use
// cmd/inframe-bench for the full-duration tables.

import (
	"fmt"
	"runtime"
	"testing"

	"inframe/internal/benchcmp"
	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/experiments"
	"inframe/internal/fleet"
	"inframe/internal/frame"
	"inframe/internal/hvs"
	"inframe/internal/video"
)

// benchSetup trims durations so a full -bench=. sweep stays tractable.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.ThroughputSeconds = 1.0
	s.FlickerSeconds = 0.5
	return s
}

// BenchmarkFig3NaiveDesigns regenerates the naive-design flicker comparison.
func BenchmarkFig3NaiveDesigns(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NaiveDesigns(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Mean, "inframe-score")
		b.ReportMetric(rows[1].Mean, "naive-score")
	}
}

// BenchmarkFig5Waveform regenerates the smoothing waveform verification.
func BenchmarkFig5Waveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.SmoothingWaveform()
		b.ReportMetric(series.Ripple, "lpf-ripple")
	}
}

// BenchmarkFig6Brightness regenerates the flicker-vs-brightness study.
func BenchmarkFig6Brightness(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FlickerVsBrightness(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Mean, "score-d50-b200")
	}
}

// BenchmarkFig6Amplitude regenerates the flicker-vs-amplitude study.
func BenchmarkFig6Amplitude(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FlickerVsAmplitude(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Mean, "score-d50-t14")
	}
}

// BenchmarkFig7Throughput regenerates the full throughput chart (all twelve
// bars); the reported metric is the paper's headline gray τ=10 rate.
func BenchmarkFig7Throughput(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Throughput(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Report.ThroughputBps/1000, "gray-t10-kbps")
	}
}

// BenchmarkAblationEnvelope regenerates the envelope-shape comparison.
func BenchmarkAblationEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.EnvelopeAblation()
		b.ReportMetric(rows[2].PhantomAmp, "stair-phantom")
	}
}

// BenchmarkAblationShutter regenerates the shutter-regime comparison.
func BenchmarkAblationShutter(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ShutterAblation(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputBps/1000, "rolling-kbps")
	}
}

// BenchmarkAblationNoise regenerates the sensor-noise sweep.
func BenchmarkAblationNoise(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseSweep(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the pipeline's hot stages ---

func benchLayout() core.Layout {
	l, err := core.ScaledPaperLayout(2)
	if err != nil {
		panic(err)
	}
	return l
}

// BenchmarkMultiplexFrame measures rendering one 960×540 multiplexed frame.
func BenchmarkMultiplexFrame(b *testing.B) {
	l := benchLayout()
	p := core.DefaultParams(l)
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Frame(i % 600)
	}
}

// BenchmarkCameraCapture measures one rolling-shutter capture of a 960×540
// display at 640×360.
func BenchmarkCameraCapture(b *testing.B) {
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0
	d, err := display.New(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if err := d.Push(frame.NewFilled(960, 540, 127)); err != nil {
			b.Fatal(err)
		}
	}
	cam, err := camera.New(camera.DefaultConfig(640, 360))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam.Capture(d, 0.01, i)
	}
}

// BenchmarkMeasureCapture measures the per-capture Block energy scan.
func BenchmarkMeasureCapture(b *testing.B) {
	l := benchLayout()
	p := core.DefaultParams(l)
	rcv, err := core.NewReceiver(core.DefaultReceiverConfig(p, 640, 360))
	if err != nil {
		b.Fatal(err)
	}
	cap := frame.NewFilled(640, 360, 127)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rcv.MeasureCapture(cap)
	}
}

// BenchmarkFlickerAmplitude measures one spectral observer evaluation.
func BenchmarkFlickerAmplitude(b *testing.B) {
	o := hvs.DefaultObserver()
	wave := make([]float64, 480)
	for i := range wave {
		if i%4 < 2 {
			wave[i] = 140
		} else {
			wave[i] = 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.FlickerAmplitude(wave, 480)
	}
}

// BenchmarkBoxBlur measures the separable smoothing filter on a capture.
func BenchmarkBoxBlur(b *testing.B) {
	f := frame.NewFilled(640, 360, 127)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame.BoxBlur(f, 1)
	}
}

// benchWorkerCounts are the pool sizes the sequential-vs-parallel benchmarks
// compare: 1 (the differential-testing baseline) and GOMAXPROCS.
func benchWorkerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// benchPipeline builds the half-scale paper pipeline (960×540 display,
// 640×360 capture) with every stage's worker pool set to w and one shared
// frame pool threaded through every stage — the steady-state configuration
// the allocs/op gate pins.
func benchPipeline(b *testing.B, w int) (*core.Multiplexer, channel.Config, *core.Receiver, int, *frame.Pool) {
	b.Helper()
	l := benchLayout()
	pool := frame.NewPool()
	p := core.DefaultParams(l)
	p.Workers = w
	p.Pool = pool
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := channel.DefaultConfig(640, 360)
	cfg.Workers = w
	cfg.Pool = pool
	cfg.Camera.Workers = w
	rcfg := core.DefaultReceiverConfig(p, 640, 360)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = w
	rcfg.Pool = pool
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, cfg, rcv, 4 * p.Tau, pool
}

// BenchmarkEndToEnd measures render + channel simulation + decode at the
// half-scale paper geometry, once sequentially (workers=1) and once with the
// full worker pool — the ratio is the pipeline's parallel speedup. Captures
// are recycled after each decode, so after the first iteration the loop
// allocates no frame buffers (allocs/op tracks everything else).
func BenchmarkEndToEnd(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m, cfg, rcv, nDisplay, pool := benchPipeline(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := channel.Simulate(m, nDisplay, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
				res.Recycle(pool)
			}
			b.StopTimer()
			s := pool.Stats()
			b.ReportMetric(float64(s.Misses), "pool-misses")
		})
	}
}

// BenchmarkDecodeCaptures isolates the receive side: per-capture energy
// measurement plus the adaptive per-Block decode, sequential vs parallel.
func BenchmarkDecodeCaptures(b *testing.B) {
	m, cfg, _, nDisplay, _ := benchPipeline(b, 0)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			_, _, rcv, _, _ := benchPipeline(b, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
			}
		})
	}
}

// BenchmarkFleet measures the broadcast harness: one rendered 4·τ stream
// decoded by the default 8-receiver population sharing a capped pool — the
// same shape the Fleet baseline entries record — and reports receivers/sec,
// the fleet scaling headline.
func BenchmarkFleet(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg, err := benchcmp.FleetConfig(2, w)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				n = res.N
			}
			b.StopTimer()
			b.ReportMetric(float64(n)/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "receivers/s")
		})
	}
}

// BenchmarkMessageRoundTrip measures the full stack on a compact layout.
func BenchmarkMessageRoundTrip(b *testing.B) {
	l := Layout{
		FrameW: 192, FrameH: 128,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 24, BlocksY: 16,
	}
	p := DefaultParams(l)
	p.Tau = 8
	msg := []byte("benchmark payload")
	// Benign channel: this benchmark measures the stack's speed; channel
	// robustness at this miniature layout is covered by the test suite.
	cfg := DefaultChannelConfig(l.FrameW, l.FrameH)
	cfg.Camera.ReadoutTime = 0
	cfg.Camera.NoiseSigma = 0.5
	cfg.Camera.BlurRadius = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := NewTransmitter(p, GrayVideo(l.FrameW, l.FrameH), msg)
		if err != nil {
			b.Fatal(err)
		}
		nDisplay := 16*tx.DisplayFramesPerCycle() + 24
		res, err := Simulate(tx.Multiplexer(), nDisplay, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rcfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
		rcfg.Exposure = cfg.Camera.Exposure
		rcfg.ReadoutTime = cfg.Camera.ReadoutTime
		rx, err := NewMessageReceiver(rcfg)
		if err != nil {
			b.Fatal(err)
		}
		rx.Ingest(res, nDisplay/p.Tau)
		if !rx.Complete() {
			b.Fatal("message incomplete")
		}
	}
}
