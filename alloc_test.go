package inframe

import (
	"runtime"
	"testing"

	"inframe/internal/frame"
)

// Steady-state allocation tests: the frame.Pool refactor's contract is that
// once the pipeline has warmed up, no stage allocates another frame buffer —
// every Get is a pool hit. The pool's Misses counter measures exactly that
// (a miss is the only place a pooled frame buffer is ever allocated), so
// these tests warm the pipeline, snapshot the counter, keep running and
// demand it stays frozen. testing.AllocsPerRun bounds the residual scalar
// traffic of the render loop, with a byte bound far below one frame buffer
// so a single leaked frame (~2 MB at half scale) cannot hide in the slack.

// allocPipeline builds the half-scale paper pipeline with one shared pool
// and Workers=1 (the deterministic sequential path), returning a closure
// that runs one full simulate+decode+recycle cycle.
func allocPipeline(t *testing.T, pool *FramePool) func() {
	t.Helper()
	l, err := ScaledPaperLayout(2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l)
	p.Workers = 1
	p.Pool = pool
	m, err := NewMultiplexer(p, GrayVideo(l.FrameW, l.FrameH), NewRandomStream(l, 3))
	if err != nil {
		t.Fatal(err)
	}
	nDisplay := 2 * p.Tau
	cfg := DefaultChannelConfig(640, 360)
	cfg.Workers = 1
	cfg.Pool = pool
	cfg.Camera.Workers = 1
	cfg.Camera.BlurRadius = 1
	rcfg := DefaultReceiverConfig(p, 640, 360)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = 1
	rcfg.Pool = pool
	rx, err := NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return func() {
		res, err := Simulate(m, nDisplay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rx.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau)
		res.Recycle(pool)
	}
}

// TestSteadyStateFrameBufferAllocs proves the tentpole claim end to end:
// after two warmup cycles through render → display → capture → decode →
// recycle, further cycles allocate zero frame buffers — the pool serves
// every Get from its free list.
func TestSteadyStateFrameBufferAllocs(t *testing.T) {
	pool := NewFramePool()
	run := allocPipeline(t, pool)
	run()
	run()
	warm := pool.Stats()
	if warm.Hits == 0 {
		t.Fatalf("pool not exercised during warmup: %+v", warm)
	}
	const cycles = 3
	for i := 0; i < cycles; i++ {
		run()
	}
	steady := pool.Stats()
	if steady.Misses != warm.Misses {
		t.Errorf("steady state allocated %d frame buffers over %d cycles (pool misses %d -> %d); the pipeline leaked buffers instead of recycling them",
			steady.Misses-warm.Misses, cycles, warm.Misses, steady.Misses)
	}
	if steady.Gets <= warm.Gets {
		t.Fatalf("steady-state cycles performed no pool Gets: %+v -> %+v", warm, steady)
	}
}

// TestMultiplexerRenderAllocs bounds the render loop itself: one Frame +
// Recycle cycle must stay within a few scalar allocations (parallel fan-out
// closures) and well under a frame buffer's worth of bytes.
func TestMultiplexerRenderAllocs(t *testing.T) {
	l, err := ScaledPaperLayout(2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l)
	p.Workers = 1
	pool := NewFramePool()
	p.Pool = pool
	m, err := NewMultiplexer(p, GrayVideo(l.FrameW, l.FrameH), NewRandomStream(l, 3))
	if err != nil {
		t.Fatal(err)
	}
	cycle := 2 * p.Tau
	// Warm one full data cycle so the stream cache and the pool free list
	// are populated before anything is measured.
	for k := 0; k < cycle; k++ {
		m.Recycle(m.Frame(k))
	}
	k := 0
	step := func() {
		m.Recycle(m.Frame(k))
		k = (k + 1) % cycle
	}
	const runs = 24
	allocs := testing.AllocsPerRun(runs, step)
	if allocs > 8 {
		t.Errorf("steady-state render performs %.0f allocs per frame, want <= 8", allocs)
	}
	// Three persistent buffers may miss a cold pool: the video buffer, the
	// cached delta plane, and the one in-flight output frame (which the
	// Recycle cycle then reuses forever).
	if misses := pool.Stats().Misses; misses > 3 {
		t.Errorf("render loop missed the pool %d times, want only the warm vbuf+delta+out trio", misses)
	}
	// Byte bound: the residual allocations must be scalar-sized, not a
	// hidden frame buffer (~2 MB at this scale).
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	frameBytes := uint64(l.FrameW * l.FrameH * 4)
	if perRun := (after.TotalAlloc - before.TotalAlloc) / runs; perRun > frameBytes/16 {
		t.Errorf("steady-state render allocates %d B per frame, want < %d (a leaked frame buffer is %d B)",
			perRun, frameBytes/16, frameBytes)
	}
}

// TestReceiverMeasureAllocs pins the receive side's scratch reuse: capture
// measurement borrows its smoothing buffers from the pool, so repeated
// measurement of the same capture must stop missing after the first call.
func TestReceiverMeasureAllocs(t *testing.T) {
	l, err := ScaledPaperLayout(2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l)
	pool := NewFramePool()
	rcfg := DefaultReceiverConfig(p, 640, 360)
	rcfg.Workers = 1
	rcfg.Pool = pool
	rx, err := NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	capFrame := frame.NewFilled(640, 360, 127)
	rx.MeasureCapture(capFrame)
	warm := pool.Stats()
	for i := 0; i < 5; i++ {
		rx.MeasureCapture(capFrame)
	}
	steady := pool.Stats()
	if steady.Misses != warm.Misses {
		t.Errorf("repeated MeasureCapture allocated %d frame buffers, want 0 (misses %d -> %d)",
			steady.Misses-warm.Misses, warm.Misses, steady.Misses)
	}
}
