package inframe

import (
	"reflect"
	"strings"
	"testing"

	"inframe/internal/core"
)

// TestByteErasuresMatchDataBitsOrdering corrupts exactly one GOB at a time
// and checks that byteErasures flags exactly the codeword bytes whose bits
// that GOB carries. The bit ownership is derived independently from
// DataFrame.DataBits (flip a GOB's data Blocks, diff the extracted bits), so
// the test locks the two orderings — gy-outer/gx-inner, m²−1 bits per GOB —
// to each other.
func TestByteErasuresMatchDataBitsOrdering(t *testing.T) {
	l := testLayout()
	per := l.BlocksPerGOB() - 1
	nBytes := l.DataBitsPerFrame() / 8
	base := core.NewDataFrame(l).DataBits()
	for g := 0; g < l.NumGOBs(); g++ {
		gx, gy := g%l.GOBsX(), g/l.GOBsX()

		// Independent ground truth: which DataBits positions does GOB g own?
		mod := core.NewDataFrame(l)
		for _, blk := range l.GOBBlocks(gx, gy)[:per] {
			mod.SetBit(blk[0], blk[1], true)
		}
		bits := mod.DataBits()
		var owned []int
		for i := range bits {
			if bits[i] != base[i] {
				owned = append(owned, i)
			}
		}
		if len(owned) != per || owned[0] != g*per || owned[len(owned)-1] != (g+1)*per-1 {
			t.Fatalf("GOB %d owns bits %v, want contiguous [%d,%d)", g, owned, g*per, (g+1)*per)
		}

		// Expected erasures: every byte overlapping an owned bit.
		wantSet := map[int]bool{}
		for _, bit := range owned {
			if b := bit / 8; b < nBytes {
				wantSet[b] = true
			}
		}

		// Decode outcome with only GOB g corrupted.
		fd := &core.FrameDecode{Bits: core.NewDataFrame(l)}
		for y := 0; y < l.GOBsY(); y++ {
			for x := 0; x < l.GOBsX(); x++ {
				fd.GOBs = append(fd.GOBs, core.GOBResult{GX: x, GY: y, Available: true, ParityOK: true})
			}
		}
		fd.GOBs[g].Available = false

		got := byteErasures(fd)
		gotSet := map[int]bool{}
		for _, b := range got {
			gotSet[b] = true
		}
		if !reflect.DeepEqual(gotSet, wantSet) {
			t.Fatalf("GOB %d: erased bytes %v, want %v", g, got, keys(wantSet))
		}
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestLinkParityClampSmallLayout covers the parity-floor edge case: 44 GOBs
// carry 132 data bits → a 16-byte codeword, where the old unconditional
// 4-byte parity floor left only 12 data bytes — one short of header+payload —
// and the construction failed deep inside the segmenter. The budget must
// clamp to the 3 bytes that fit and the transmitter must come up.
func TestLinkParityClampSmallLayout(t *testing.T) {
	l := Layout{
		FrameW: 8, FrameH: 88,
		PixelSize: 1, BlockSize: 2, GOBSize: 2,
		BlocksX: 4, BlocksY: 44,
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	parity, err := linkParityBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	if parity != 3 {
		t.Fatalf("parity budget = %d, want 3 (clamped from the 4-byte floor)", parity)
	}
	if _, err := NewTransmitter(DefaultParams(l), GrayVideo(l.FrameW, l.FrameH), []byte("x")); err != nil {
		t.Fatalf("clamped layout rejected: %v", err)
	}
}

// TestLinkParityRejectsImpossibleLayout checks that layouts too small for any
// packet fail up front with the facade's clear message instead of a segmenter
// internality.
func TestLinkParityRejectsImpossibleLayout(t *testing.T) {
	tiny := Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4, // 18 data bits
	}
	_, err := linkParityBytes(tiny)
	if err == nil {
		t.Fatal("impossible layout accepted")
	}
	if !strings.Contains(err.Error(), "data bits") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// runPipeline is the differential-test harness: render, simulate and decode
// the paper pipeline (half-scale paper geometry, 640×360 capture) with every
// stage's worker pool set to w, returning the captures and decoded frames.
// A non-nil pool is shared by every stage, exercising the recycled-buffer
// paths; nil leaves each stage on its private pool.
func runPipeline(t *testing.T, workers int, noise float64, pool *FramePool) (*ChannelResult, []*FrameDecode) {
	t.Helper()
	l, err := ScaledPaperLayout(2)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l)
	p.Workers = workers
	p.Pool = pool
	m, err := NewMultiplexer(p, GrayVideo(l.FrameW, l.FrameH), NewRandomStream(l, 3))
	if err != nil {
		t.Fatal(err)
	}
	const nDisplay = 60
	cfg := DefaultChannelConfig(640, 360)
	cfg.Workers = workers
	cfg.Pool = pool
	cfg.Camera.Workers = workers
	cfg.Camera.NoiseSigma = noise
	cfg.Camera.Seed = 7
	cfg.Camera.BlurRadius = 0
	res, err := Simulate(m, nDisplay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultReceiverConfig(p, 640, 360)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = workers
	rcfg.Pool = pool
	rx, err := NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, rx.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau)
}

// TestWorkerCountInvariance is the determinism differential test: the whole
// pipeline — multiplexer rendering, pipelined channel simulation, capture
// measurement, adaptive decode — must be byte-identical for any worker count,
// both on a quiet channel and with seeded sensor noise.
func TestWorkerCountInvariance(t *testing.T) {
	for _, noise := range []float64{0, 2.5} {
		wantRes, wantDec := runPipeline(t, 1, noise, nil)
		for _, w := range []int{2, 8} {
			res, dec := runPipeline(t, w, noise, nil)
			if len(res.Captures) != len(wantRes.Captures) {
				t.Fatalf("noise=%v workers=%d: %d captures, want %d",
					noise, w, len(res.Captures), len(wantRes.Captures))
			}
			if !reflect.DeepEqual(res.Times, wantRes.Times) {
				t.Fatalf("noise=%v workers=%d: capture times diverge", noise, w)
			}
			for i, c := range res.Captures {
				want := wantRes.Captures[i]
				if c.W != want.W || c.H != want.H || !reflect.DeepEqual(c.Pix, want.Pix) {
					t.Fatalf("noise=%v workers=%d: capture %d not bit-identical", noise, w, i)
				}
			}
			if !reflect.DeepEqual(dec, wantDec) {
				t.Fatalf("noise=%v workers=%d: decoded frames diverge", noise, w)
			}
		}
	}
}

// TestWorkerCountInvariancePooled is the memory-model differential test: a
// shared FramePool threaded through every stage (transmitter, channel,
// camera, receiver) must leave the pipeline bit-identical to the unpooled
// run at every worker count. The pool's Get zeroes recycled buffers, so any
// divergence here means a stage leaked state through a recycled frame.
func TestWorkerCountInvariancePooled(t *testing.T) {
	const noise = 2.5
	wantRes, wantDec := runPipeline(t, 1, noise, nil)
	for _, w := range []int{1, 2, 8} {
		pool := NewFramePool()
		res, dec := runPipeline(t, w, noise, pool)
		if len(res.Captures) != len(wantRes.Captures) {
			t.Fatalf("workers=%d: %d captures, want %d", w, len(res.Captures), len(wantRes.Captures))
		}
		for i, c := range res.Captures {
			want := wantRes.Captures[i]
			if c.W != want.W || c.H != want.H || !reflect.DeepEqual(c.Pix, want.Pix) {
				t.Fatalf("workers=%d: pooled capture %d not bit-identical to unpooled", w, i)
			}
		}
		if !reflect.DeepEqual(dec, wantDec) {
			t.Fatalf("workers=%d: pooled decode diverges from unpooled", w)
		}
		if s := pool.Stats(); s.Gets == 0 || s.Hits == 0 {
			t.Fatalf("workers=%d: pool was not exercised: %+v", w, s)
		}
	}
}
