module inframe

go 1.22
