// Command inframe-frames writes Fig. 4-style PNG images: complementary
// multiplexed frame pairs (V+D and V−D) for a pure gray frame and for the
// sun-rise clip, plus their temporal average demonstrating that the pair
// fuses back to the original video.
//
// Usage:
//
//	inframe-frames [-out dir] [-delta 50] [-scale 2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"inframe"
	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/video"
)

func main() {
	out := flag.String("out", "frames-out", "output directory")
	delta := flag.Float64("delta", 50, "chessboard amplitude δ (Fig. 4 uses a large one for visibility)")
	scale := flag.Int("scale", 2, "paper-geometry divisor")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	l, err := inframe.ScaledPaperLayout(*scale)
	if err != nil {
		fatal(err)
	}
	sources := []struct {
		name string
		src  inframe.VideoSource
	}{
		{"gray", video.Gray(l.FrameW, l.FrameH)},
		{"sunrise", video.NewSunRise(l.FrameW, l.FrameH, *seed)},
	}
	for _, s := range sources {
		p := inframe.DefaultParams(l)
		p.Delta = *delta
		m, err := core.NewMultiplexer(p, s.src, core.NewRandomStream(l, *seed))
		if err != nil {
			fatal(err)
		}
		plus := m.Frame(0)  // V + D
		minus := m.Frame(1) // V − D
		fused, err := frame.Average(plus, minus)
		if err != nil {
			fatal(err)
		}
		orig := s.src.Frame(0)
		// An ordered slice, not a map: the progress lines below must come
		// out in a stable order run to run (maprange analyzer).
		outputs := []struct {
			name string
			f    *frame.Frame
		}{
			{"plus", plus}, {"minus", minus}, {"fused", fused}, {"original", orig},
		}
		for _, o := range outputs {
			name, f := o.name, o.f
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.png", s.name, name))
			if err := frame.WritePNG(path, f); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
		mae, _ := frame.MAE(fused, orig)
		psnr, _ := frame.PSNR(fused, orig)
		fmt.Printf("%s: fused-vs-original MAE %.3f, PSNR %.1f dB\n", s.name, mae, psnr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-frames:", err)
	os.Exit(1)
}
