// Command inframe-benchdiff is the dynamic half of the performance gate: it
// compares a fresh (or supplied) benchmark run against a committed BENCH_*.json
// baseline and exits nonzero when any stage regressed past the tolerance.
// The static half — the inframe-lint perf analyzers — catches allocation and
// hoisting mistakes before they are measured; this gate catches everything
// they cannot see.
//
// Usage:
//
//	inframe-benchdiff [-baseline path] [-current path] [-tolerance 0.15] \
//	                  [-scale N] [-report path] [-history]
//
// -history skips the gate entirely and prints a trend report across
// every committed BENCH_*.json (oldest schema included): one markdown
// table row per baseline with ns/op and delta-vs-previous per pipeline
// stage, closed by a newest-vs-oldest summary row. The table is the
// source of the "Benchmark baselines" section in EXPERIMENTS.md.
//
// -baseline defaults to the newest BENCH_*.json (by name) in the current
// directory — the files are date-stamped, so lexical order is age order.
// -current defaults to measuring a fresh run in-process with
// internal/benchcmp (the same measurement inframe-bench -json performs); a
// path lets CI or tests diff two saved runs without re-measuring. -scale 0
// (the default) matches the baseline's geometry so deltas are meaningful.
//
// Exit codes: 0 clean, 1 at least one regression, 2 usage or I/O error.
// Benchmarks present in only one run warn instead of failing (worker-count
// entries vary with the machine's core count).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"inframe/internal/benchcmp"
)

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_*.json (default: newest in current directory)")
	currentPath := flag.String("current", "", "compare this saved run instead of measuring fresh")
	tolerance := flag.Float64("tolerance", 0.15, "fractional ns/op slowdown allowed before failing")
	scale := flag.Int("scale", 0, "paper-geometry divisor for the fresh run (0 = match baseline)")
	reportPath := flag.String("report", "", "also write the comparison report as JSON to this path")
	history := flag.Bool("history", false, "print a trend table across every BENCH_*.json and exit")
	flag.Parse()

	if *history {
		h, err := benchcmp.LoadHistory(".")
		if err != nil {
			fatal(err)
		}
		h.WriteMarkdown(os.Stdout)
		return
	}
	if *tolerance < 0 {
		fatal(fmt.Errorf("tolerance must be non-negative, got %v", *tolerance))
	}
	if *baselinePath == "" {
		found, err := newestBaseline(".")
		if err != nil {
			fatal(err)
		}
		*baselinePath = found
	}
	base, err := benchcmp.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline: %s (%s, scale 1/%d, GOMAXPROCS %d)\n", *baselinePath, base.GoVersion, base.Scale, base.GoMaxProcs)

	var cur *benchcmp.Baseline
	if *currentPath != "" {
		cur, err = benchcmp.Load(*currentPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("current:  %s (%s, scale 1/%d, GOMAXPROCS %d)\n", *currentPath, cur.GoVersion, cur.Scale, cur.GoMaxProcs)
	} else {
		s := *scale
		if s == 0 {
			s = base.Scale
		}
		fmt.Printf("current:  measuring fresh run at scale 1/%d...\n", s)
		cur, err = benchcmp.Measure(s)
		if err != nil {
			fatal(err)
		}
	}

	report := benchcmp.Compare(base, cur, *tolerance)
	report.WriteText(os.Stdout)
	if *reportPath != "" {
		if err := writeReport(*reportPath, report); err != nil {
			fatal(err)
		}
	}
	if n := report.Regressions(); n > 0 {
		fmt.Fprintf(os.Stderr, "inframe-benchdiff: %d benchmark(s) regressed past +%.0f%%\n", n, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("ok: no benchmark regressed past +%.0f%%\n", *tolerance*100)
}

// newestBaseline returns the lexically last BENCH_*.json in dir; the files
// are date-stamped so lexical order is chronological order.
func newestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > len("BENCH_.json") &&
			name[:len("BENCH_")] == "BENCH_" && name[len(name)-len(".json"):] == ".json" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s (run inframe-bench -json first)", dir)
	}
	sort.Strings(names)
	return names[len(names)-1], nil
}

// writeReport marshals the report for CI artifact upload.
func writeReport(path string, r *benchcmp.Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-benchdiff:", err)
	os.Exit(2)
}
