// Command inframe-bench regenerates every figure and table of the paper's
// evaluation on the simulated substrate and prints them as text tables.
//
// Usage:
//
//	inframe-bench [-exp all|fig3|fig5|fig6a|fig6b|fig7|ablations|robustness|pose|fleet|speedup] \
//	              [-seconds 2.0] [-flicker-seconds 1.0] [-seed 1] [-scale 2] \
//	              [-workers 0] [-fleet-n 16] [-json path]
//
// -workers bounds every simulation worker pool (0 = GOMAXPROCS, 1 =
// sequential); outputs are bit-identical at any value. -exp speedup times the
// end-to-end pipeline sequentially and with the full pool and reports the
// ratio, verifying on the way that both runs produced identical captures.
// -exp fleet renders the multiplexed stream once and decodes it with an
// N-receiver population (-fleet-n), printing the availability/BER/TTFD
// distributions and the receivers/sec headline.
//
// -json <path> skips the figure tables and instead writes a machine-readable
// baseline (conventionally BENCH_<date>.json at the repo root): ns/op for
// the EndToEnd and DecodeCaptures stages at workers=1 and GOMAXPROCS, the
// same shapes BenchmarkEndToEnd/BenchmarkDecodeCaptures measure, so the
// bench trajectory has comparable seed points across PRs.
//
// The output is the source of the measured columns in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"inframe/internal/benchcmp"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/experiments"
	"inframe/internal/video"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig3, fig5, fig6a, fig6b, fig7, ablations, robustness, pose, fleet, speedup")
	seconds := flag.Float64("seconds", 2.0, "simulated seconds per throughput setting")
	flickerSeconds := flag.Float64("flicker-seconds", 1.0, "simulated seconds per flicker rating")
	seed := flag.Int64("seed", 1, "global random seed")
	scale := flag.Int("scale", 2, "paper-geometry divisor (1 = full 1080p, 2 = half)")
	workers := flag.Int("workers", 0, "worker pool bound (0 = GOMAXPROCS, 1 = sequential)")
	fleetN := flag.Int("fleet-n", 16, "fleet experiment population size")
	jsonPath := flag.String("json", "", "write a BENCH_*.json baseline (EndToEnd, DecodeCaptures and Fleet ns/op at workers=1 and GOMAXPROCS) to this path and exit")
	flag.Parse()

	if *jsonPath != "" {
		if err := writeBaseline(*jsonPath, *scale); err != nil {
			fatal(err)
		}
		return
	}

	s := experiments.DefaultSetup()
	s.ThroughputSeconds = *seconds
	s.FlickerSeconds = *flickerSeconds
	s.Seed = *seed
	s.ScaleDiv = *scale
	s.Workers = *workers
	if err := s.Validate(); err != nil {
		fatal(err)
	}

	if *exp == "speedup" {
		if err := speedupReport(os.Stdout, *scale, *seconds); err != nil {
			fatal(err)
		}
		return
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fatal(err)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	matched := false
	want := func(name string) bool {
		ok := *exp == "all" || *exp == name
		matched = matched || ok
		return ok
	}

	if want("fig3") {
		run("Fig. 3 — naive designs vs complementary frames (flicker 0-4)", func() error {
			rows, err := experiments.NaiveDesigns(s)
			if err != nil {
				return err
			}
			experiments.WriteNaive(os.Stdout, rows)
			return nil
		})
	}
	if want("fig5") {
		run("Fig. 5 — temporal smoothing waveform through electronic LPF", func() error {
			series := experiments.SmoothingWaveform()
			// The full series is long; print the transition region and
			// the stability summary.
			fmt.Printf("samples: %d, residual ripple %.3f drive units (input p-p 40)\n",
				len(series.Raw), series.Ripple)
			experiments.WriteEnvelopes(os.Stdout, experiments.EnvelopeAblation())
			return nil
		})
	}
	if want("fig6a") {
		run("Fig. 6 (left) — flicker vs color brightness", func() error {
			rows, err := experiments.FlickerVsBrightness(s)
			if err != nil {
				return err
			}
			experiments.WriteFlicker(os.Stdout, rows)
			return nil
		})
	}
	if want("fig6b") {
		run("Fig. 6 (right) — flicker vs waveform amplitude", func() error {
			rows, err := experiments.FlickerVsAmplitude(s)
			if err != nil {
				return err
			}
			experiments.WriteFlicker(os.Stdout, rows)
			return nil
		})
	}
	if want("fig7") {
		run("Fig. 7 — secondary channel throughput", func() error {
			rows, err := experiments.Throughput(s)
			if err != nil {
				return err
			}
			experiments.WriteThroughput(os.Stdout, rows)
			return nil
		})
	}
	if want("ablations") {
		run("A2 — Pixel pitch vs phantom array", func() error {
			rows, err := experiments.PixelSizeAblation(s)
			if err != nil {
				return err
			}
			experiments.WritePixelSizes(os.Stdout, rows)
			return nil
		})
		run("A3 — confidence band sweep (availability vs errors)", func() error {
			rows, err := experiments.ThresholdSweep(s)
			if err != nil {
				return err
			}
			experiments.WriteBands(os.Stdout, rows)
			return nil
		})
		run("A4 — shutter regimes", func() error {
			rows, err := experiments.ShutterAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteShutter(os.Stdout, rows)
			return nil
		})
		run("A5 — GOB protection: XOR parity vs Reed-Solomon", func() error {
			rows, err := experiments.CodingAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteCoding(os.Stdout, rows)
			return nil
		})
		run("A6 — sensor noise sweep", func() error {
			rows, err := experiments.NoiseSweep(s)
			if err != nil {
				return err
			}
			experiments.WriteNoise(os.Stdout, rows)
			return nil
		})
		run("A7 — detector comparison", func() error {
			rows, err := experiments.DetectorAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteDetectors(os.Stdout, rows)
			return nil
		})
		run("A8 — blind frame synchronization", func() error {
			rows, err := experiments.SyncAccuracy(s)
			if err != nil {
				return err
			}
			experiments.WriteSync(os.Stdout, rows)
			return nil
		})
		run("A9 — barcode baseline comparison", func() error {
			rows, err := experiments.BarcodeComparison(s)
			if err != nil {
				return err
			}
			experiments.WriteBaseline(os.Stdout, rows)
			return nil
		})
		run("A10 — blind camera registration", func() error {
			rows, err := experiments.Registration(s)
			if err != nil {
				return err
			}
			experiments.WriteRegistration(os.Stdout, rows)
			return nil
		})
		run("A11 — batch vs streaming receiver", func() error {
			rows, err := experiments.Streaming(s)
			if err != nil {
				return err
			}
			experiments.WriteStreaming(os.Stdout, rows)
			return nil
		})
		run("A12 — display pixel response (gray-to-gray)", func() error {
			rows, err := experiments.ResponseAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteResponse(os.Stdout, rows)
			return nil
		})
		run("A13 — rate vs perceptibility trade-off (§5)", func() error {
			rows, err := experiments.Tradeoff(s)
			if err != nil {
				return err
			}
			experiments.WriteTradeoff(os.Stdout, rows)
			return nil
		})
	}
	if want("robustness") {
		run("Robustness — impairment sweep with graceful degradation", func() error {
			rows, err := experiments.Robustness(s)
			if err != nil {
				return err
			}
			experiments.WriteRobustness(os.Stdout, rows)
			return nil
		})
	}
	if want("pose") {
		run("Pose — availability vs camera tilt, rigid vs registered receiver", func() error {
			rows, err := experiments.Pose(s)
			if err != nil {
				return err
			}
			experiments.WritePose(os.Stdout, rows)
			return nil
		})
	}
	if want("fleet") {
		run("Fleet — one rendered stream, N-receiver broadcast population", func() error {
			start := time.Now()
			res, err := experiments.Fleet(s, *fleetN)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Seconds()
			experiments.WriteFleet(os.Stdout, res)
			fmt.Printf("receivers/sec: %.2f (N=%d in %.1fs, render included)\n",
				float64(res.N)/elapsed, res.N, elapsed)
			return nil
		})
	}
	if !matched {
		fatal(fmt.Errorf("unknown experiment %q (use all, fig3, fig5, fig6a, fig6b, fig7, ablations, robustness, pose, fleet or speedup)", *exp))
	}
}

// speedupReport times the end-to-end pipeline (render → display → camera →
// decode) at workers=1 and workers=GOMAXPROCS on the scaled paper geometry
// and prints the ratio, cross-checking that both runs were bit-identical.
func speedupReport(w *os.File, scale int, seconds float64) error {
	l, err := core.ScaledPaperLayout(scale)
	if err != nil {
		return err
	}
	nDisplay := int(seconds * 120)
	var renderStats core.RenderStats
	runOnce := func(workers int) (*channel.Result, []*core.FrameDecode, time.Duration, error) {
		p := core.DefaultParams(l)
		p.Workers = workers
		m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 1))
		if err != nil {
			return nil, nil, 0, err
		}
		cfg := channel.DefaultConfig(1280/scale, 720/scale)
		cfg.Workers = workers
		cfg.Camera.Workers = workers
		rcfg := core.DefaultReceiverConfig(p, 1280/scale, 720/scale)
		rcfg.Exposure = cfg.Camera.Exposure
		rcfg.ReadoutTime = cfg.Camera.ReadoutTime
		rcfg.Workers = workers
		rcv, err := core.NewReceiver(rcfg)
		if err != nil {
			return nil, nil, 0, err
		}
		start := time.Now()
		res, err := channel.Simulate(m, nDisplay, cfg)
		if err != nil {
			return nil, nil, 0, err
		}
		dec := rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau)
		// RenderStats is deterministic at any worker count, so keeping the
		// last run's snapshot reports both runs at once.
		renderStats = m.RenderStats()
		return res, dec, time.Since(start), nil
	}

	maxW := runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "=== sequential vs parallel pipeline (scale 1/%d, %d display frames, %d cores) ===\n",
		scale, nDisplay, maxW)
	seqRes, seqDec, seqDur, err := runOnce(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workers=1:  %8.2fs\n", seqDur.Seconds())
	parRes, parDec, parDur, err := runOnce(maxW)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workers=%d:  %8.2fs\n", maxW, parDur.Seconds())
	fmt.Fprintf(w, "speedup: %.2fx\n", seqDur.Seconds()/parDur.Seconds())
	fmt.Fprintf(w, "render: blocks=%d skipped=%d (skip-rate %.3f) headroom-skipped=%d/%d video-skipped=%d/%d\n",
		renderStats.Blocks, renderStats.BlocksSkipped, renderStats.SkipRate(),
		renderStats.HeadroomSkipped, renderStats.HeadroomBlocks+renderStats.HeadroomSkipped,
		renderStats.VideoSkipped, renderStats.VideoRefreshes+renderStats.VideoSkipped)

	if len(seqRes.Captures) != len(parRes.Captures) || len(seqDec) != len(parDec) {
		return fmt.Errorf("sequential and parallel runs diverged in shape")
	}
	for i := range seqRes.Captures {
		a, b := seqRes.Captures[i].Pix, parRes.Captures[i].Pix
		for j := range a {
			//lint:ignore floateq the contract under test is bit-identity, so the comparison must be exact
			if a[j] != b[j] {
				return fmt.Errorf("capture %d diverges at pixel %d", i, j)
			}
		}
	}
	for i := range seqDec {
		if !seqDec[i].Bits.Equal(parDec[i].Bits) {
			return fmt.Errorf("decoded frame %d diverges", i)
		}
	}
	fmt.Fprintln(w, "outputs bit-identical: yes")
	return nil
}

// --- -json baseline ---

// writeBaseline measures EndToEnd (render + channel + decode) and
// DecodeCaptures (receive side only) at workers=1 and GOMAXPROCS — via
// internal/benchcmp, the same measurement inframe-benchdiff performs — and
// writes the results as JSON to path.
func writeBaseline(path string, scale int) error {
	base, err := benchcmp.Measure(scale)
	if err != nil {
		return err
	}
	if err := base.Write(path); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-bench:", err)
	os.Exit(1)
}
