// Command inframe-bench regenerates every figure and table of the paper's
// evaluation on the simulated substrate and prints them as text tables.
//
// Usage:
//
//	inframe-bench [-exp all|fig3|fig5|fig6a|fig6b|fig7|ablations] \
//	              [-seconds 2.0] [-flicker-seconds 1.0] [-seed 1] [-scale 2]
//
// The output is the source of the measured columns in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"inframe/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig3, fig5, fig6a, fig6b, fig7, ablations")
	seconds := flag.Float64("seconds", 2.0, "simulated seconds per throughput setting")
	flickerSeconds := flag.Float64("flicker-seconds", 1.0, "simulated seconds per flicker rating")
	seed := flag.Int64("seed", 1, "global random seed")
	scale := flag.Int("scale", 2, "paper-geometry divisor (1 = full 1080p, 2 = half)")
	flag.Parse()

	s := experiments.DefaultSetup()
	s.ThroughputSeconds = *seconds
	s.FlickerSeconds = *flickerSeconds
	s.Seed = *seed
	s.ScaleDiv = *scale
	if err := s.Validate(); err != nil {
		fatal(err)
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fatal(err)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig3") {
		run("Fig. 3 — naive designs vs complementary frames (flicker 0-4)", func() error {
			rows, err := experiments.NaiveDesigns(s)
			if err != nil {
				return err
			}
			experiments.WriteNaive(os.Stdout, rows)
			return nil
		})
	}
	if want("fig5") {
		run("Fig. 5 — temporal smoothing waveform through electronic LPF", func() error {
			series := experiments.SmoothingWaveform()
			// The full series is long; print the transition region and
			// the stability summary.
			fmt.Printf("samples: %d, residual ripple %.3f drive units (input p-p 40)\n",
				len(series.Raw), series.Ripple)
			experiments.WriteEnvelopes(os.Stdout, experiments.EnvelopeAblation())
			return nil
		})
	}
	if want("fig6a") {
		run("Fig. 6 (left) — flicker vs color brightness", func() error {
			rows, err := experiments.FlickerVsBrightness(s)
			if err != nil {
				return err
			}
			experiments.WriteFlicker(os.Stdout, rows)
			return nil
		})
	}
	if want("fig6b") {
		run("Fig. 6 (right) — flicker vs waveform amplitude", func() error {
			rows, err := experiments.FlickerVsAmplitude(s)
			if err != nil {
				return err
			}
			experiments.WriteFlicker(os.Stdout, rows)
			return nil
		})
	}
	if want("fig7") {
		run("Fig. 7 — secondary channel throughput", func() error {
			rows, err := experiments.Throughput(s)
			if err != nil {
				return err
			}
			experiments.WriteThroughput(os.Stdout, rows)
			return nil
		})
	}
	if want("ablations") {
		run("A2 — Pixel pitch vs phantom array", func() error {
			rows, err := experiments.PixelSizeAblation(s)
			if err != nil {
				return err
			}
			experiments.WritePixelSizes(os.Stdout, rows)
			return nil
		})
		run("A3 — confidence band sweep (availability vs errors)", func() error {
			rows, err := experiments.ThresholdSweep(s)
			if err != nil {
				return err
			}
			experiments.WriteBands(os.Stdout, rows)
			return nil
		})
		run("A4 — shutter regimes", func() error {
			rows, err := experiments.ShutterAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteShutter(os.Stdout, rows)
			return nil
		})
		run("A5 — GOB protection: XOR parity vs Reed-Solomon", func() error {
			rows, err := experiments.CodingAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteCoding(os.Stdout, rows)
			return nil
		})
		run("A6 — sensor noise sweep", func() error {
			rows, err := experiments.NoiseSweep(s)
			if err != nil {
				return err
			}
			experiments.WriteNoise(os.Stdout, rows)
			return nil
		})
		run("A7 — detector comparison", func() error {
			rows, err := experiments.DetectorAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteDetectors(os.Stdout, rows)
			return nil
		})
		run("A8 — blind frame synchronization", func() error {
			rows, err := experiments.SyncAccuracy(s)
			if err != nil {
				return err
			}
			experiments.WriteSync(os.Stdout, rows)
			return nil
		})
		run("A9 — barcode baseline comparison", func() error {
			rows, err := experiments.BarcodeComparison(s)
			if err != nil {
				return err
			}
			experiments.WriteBaseline(os.Stdout, rows)
			return nil
		})
		run("A10 — blind camera registration", func() error {
			rows, err := experiments.Registration(s)
			if err != nil {
				return err
			}
			experiments.WriteRegistration(os.Stdout, rows)
			return nil
		})
		run("A11 — batch vs streaming receiver", func() error {
			rows, err := experiments.Streaming(s)
			if err != nil {
				return err
			}
			experiments.WriteStreaming(os.Stdout, rows)
			return nil
		})
		run("A12 — display pixel response (gray-to-gray)", func() error {
			rows, err := experiments.ResponseAblation(s)
			if err != nil {
				return err
			}
			experiments.WriteResponse(os.Stdout, rows)
			return nil
		})
		run("A13 — rate vs perceptibility trade-off (§5)", func() error {
			rows, err := experiments.Tradeoff(s)
			if err != nil {
				return err
			}
			experiments.WriteTradeoff(os.Stdout, rows)
			return nil
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-bench:", err)
	os.Exit(1)
}
