// Command inframe-codec converts between byte messages and multiplexed
// display frames on disk, the offline half of the pipeline: "encode" renders
// the multiplexed PNG frame sequence a 120 Hz player would show; "decode"
// reads captured PNG frames back into the message.
//
// Usage:
//
//	inframe-codec encode -message "hello" -out frames/ [-video gray] [-cycles 16]
//	inframe-codec decode -in frames/ [-fps 120]
//
// decode treats each input frame as an ideal capture at the display's
// resolution and cadence; for the full camera-impaired path use inframe-sim.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"inframe"
	"inframe/internal/frame"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "encode":
		encode(os.Args[2:])
	case "decode":
		decode(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: inframe-codec encode|decode [flags]")
	os.Exit(2)
}

func layoutAndParams(scale int, tau int) (inframe.Layout, inframe.Params) {
	l, err := inframe.ScaledPaperLayout(scale)
	if err != nil {
		fatal(err)
	}
	p := inframe.DefaultParams(l)
	p.Tau = tau
	return l, p
}

func encode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	message := fs.String("message", "hello from InFrame", "message to embed")
	out := fs.String("out", "frames", "output directory for PNG frames")
	videoName := fs.String("video", "gray", "video content: gray, darkgray, sunrise")
	cycles := fs.Int("cycles", 16, "message repetitions (receivers need ~16 frames to calibrate)")
	scale := fs.Int("scale", 2, "paper-geometry divisor")
	tau := fs.Int("tau", 12, "smoothing cycle")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	l, p := layoutAndParams(*scale, *tau)
	var src inframe.VideoSource
	switch *videoName {
	case "gray":
		src = inframe.GrayVideo(l.FrameW, l.FrameH)
	case "darkgray":
		src = inframe.DarkGrayVideo(l.FrameW, l.FrameH)
	case "sunrise":
		src = inframe.SunRiseVideo(l.FrameW, l.FrameH, *seed)
	default:
		fatal(fmt.Errorf("unknown video %q", *videoName))
	}
	tx, err := inframe.NewTransmitter(p, src, []byte(*message))
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	n := *cycles * tx.DisplayFramesPerCycle()
	for k := 0; k < n; k++ {
		m := tx.Multiplexer()
		f := m.Frame(k)
		path := filepath.Join(*out, fmt.Sprintf("frame-%05d.png", k))
		if err := frame.WritePNG(path, f); err != nil {
			fatal(err)
		}
		// The PNG encoder has consumed the pixels; hand the buffer back so
		// a long export reuses one frame instead of allocating n of them.
		m.Recycle(f)
	}
	fmt.Printf("wrote %d frames (%d packets × %d cycles) to %s\n",
		n, tx.Packets(), *cycles, *out)
}

func decode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "frames", "directory of captured PNG frames (sorted by name)")
	scale := fs.Int("scale", 2, "paper-geometry divisor")
	tau := fs.Int("tau", 12, "smoothing cycle")
	fps := fs.Float64("fps", 120, "capture cadence of the input frames")
	fs.Parse(args)

	l, p := layoutAndParams(*scale, *tau)
	entries, err := os.ReadDir(*in)
	if err != nil {
		fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".png" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no PNG frames in %s", *in))
	}
	sort.Strings(names)
	caps := make([]*frame.Frame, len(names))
	times := make([]float64, len(names))
	for i, name := range names {
		f, err := frame.ReadPNG(filepath.Join(*in, name))
		if err != nil {
			fatal(err)
		}
		caps[i] = f
		times[i] = float64(i) / *fps
	}
	rcfg := inframe.DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	rx, err := inframe.NewMessageReceiver(rcfg)
	if err != nil {
		fatal(err)
	}
	exposure := 1 / *fps
	nData := int(times[len(times)-1] / (float64(*tau) / 120))
	rx.Ingest(&inframe.ChannelResult{Captures: caps, Times: times, Exposure: exposure}, nData)
	if !rx.Complete() {
		fatal(fmt.Errorf("message incomplete; missing packets %v", rx.Missing()))
	}
	msg, err := rx.Message()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("decoded %d bytes: %q\n", len(msg), msg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-codec:", err)
	os.Exit(1)
}
