package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRuns are full CLI invocations whose byte-exact output is pinned
// under testdata/. Every run is seeded, so any diff is a real behaviour
// change — rerun with -update to accept one deliberately.
var goldenRuns = []struct {
	name string
	args []string
}{
	{name: "clean_report", args: []string{
		"-scale", "2", "-seconds", "0.8", "-seed", "5", "-report"}},
	{name: "impaired_report", args: []string{
		"-scale", "2", "-seconds", "0.8", "-seed", "5", "-report",
		"-impair-seed", "9", "-drop", "0.25", "-jitter", "0.0002"}},
	{name: "message", args: []string{
		"-scale", "2", "-seconds", "0.3", "-seed", "5", "-message", "hello inframe"}},
}

func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline CLI runs")
	}
	for _, tc := range goldenRuns {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			if stderr.Len() != 0 {
				t.Fatalf("unexpected stderr: %s", stderr.String())
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output diverged from %s\n--- got ---\n%s--- want ---\n%s",
					path, stdout.String(), string(want))
			}
		})
	}
}

// TestRunDeterministic reruns one seeded invocation and requires
// byte-identical output, independent of the worker count.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline CLI runs")
	}
	base := []string{"-scale", "4", "-seconds", "0.8", "-seed", "5", "-report",
		"-impair-seed", "9", "-drop", "0.2"}
	outputs := make([]string, 0, 3)
	for _, workers := range []string{"1", "1", "3"} {
		var stdout, stderr bytes.Buffer
		args := append(append([]string{}, base...), "-workers", workers)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Error("identical invocations produced different output")
	}
	if outputs[0] != outputs[2] {
		t.Error("worker count changed the output")
	}
}

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		code     int
		errWants string
	}{
		{name: "unknown flag", args: []string{"-no-such-flag"}, code: 2, errWants: "flag provided but not defined"},
		{name: "bad occlude", args: []string{"-occlude", "0.1,0.2"}, code: 2, errWants: "-occlude wants x,y,w,h"},
		{name: "bad impair", args: []string{"-drop", "1.5"}, code: 1, errWants: "DropRate"},
		{name: "unknown video", args: []string{"-video", "plasma"}, code: 1, errWants: `unknown video "plasma"`},
		{name: "odd tau", args: []string{"-tau", "7"}, code: 1, errWants: "Tau"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.errWants) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.errWants)
			}
		})
	}
}
