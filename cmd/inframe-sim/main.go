// Command inframe-sim runs one end-to-end InFrame transmission through the
// simulated display→camera channel and reports the secondary channel's
// performance, optionally also sending a real text message.
//
// Usage:
//
//	inframe-sim [-video gray|darkgray|sunrise|textcard|bars] [-delta 20]
//	            [-tau 12] [-seconds 2.0] [-scale 2] [-seed 1]
//	            [-message "text to send"]
package main

import (
	"flag"
	"fmt"
	"os"

	"inframe"
	"inframe/internal/channel"
	"inframe/internal/metrics"
)

func main() {
	videoName := flag.String("video", "gray", "video content: gray, darkgray, sunrise, textcard, bars")
	delta := flag.Float64("delta", 20, "chessboard amplitude δ")
	tau := flag.Int("tau", 12, "smoothing cycle τ (display frames per data frame, even)")
	seconds := flag.Float64("seconds", 2.0, "simulated transmission length")
	scale := flag.Int("scale", 2, "paper-geometry divisor")
	seed := flag.Int64("seed", 1, "random seed")
	message := flag.String("message", "", "optional text message to transmit instead of random data")
	flag.Parse()

	l, err := inframe.ScaledPaperLayout(*scale)
	if err != nil {
		fatal(err)
	}
	p := inframe.DefaultParams(l)
	p.Delta = *delta
	p.Tau = *tau
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	src, err := pickVideo(*videoName, l, *seed)
	if err != nil {
		fatal(err)
	}
	capW, capH := 1280 / *scale, 720 / *scale
	cfg := channel.DefaultConfig(capW, capH)
	cfg.Camera.BlurRadius = 0
	cfg.Camera.Seed = *seed
	nDisplay := int(*seconds * cfg.Display.RefreshHz)

	if *message != "" {
		runMessage(p, src, cfg, *message, nDisplay)
		return
	}

	stream := inframe.NewRandomStream(l, *seed)
	m, err := inframe.NewMultiplexer(p, src, stream)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("transmitting %.1fs of %s at δ=%.0f τ=%d over a %dx%d display → %dx%d camera...\n",
		*seconds, *videoName, *delta, *tau, l.FrameW, l.FrameH, capW, capH)
	res, err := inframe.Simulate(m, nDisplay, cfg)
	if err != nil {
		fatal(err)
	}
	rcfg := inframe.DefaultReceiverConfig(p, capW, capH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcv, err := inframe.NewReceiver(rcfg)
	if err != nil {
		fatal(err)
	}
	decoded := rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay / *tau)
	var stats metrics.GOBStats
	for d, fd := range decoded {
		if fd.Captures == 0 {
			continue
		}
		stats.AddWithOracle(fd, stream.DataFrame(d))
	}
	rep := inframe.ComputeReport(&stats, l, *tau, cfg.Display.RefreshHz)
	fmt.Printf("captures: %d, data frames decoded: %d\n", len(res.Captures), stats.Frames)
	fmt.Println(rep)
}

func runMessage(p inframe.Params, src inframe.VideoSource, cfg inframe.ChannelConfig, msg string, nDisplay int) {
	tx, err := inframe.NewTransmitter(p, src, []byte(msg))
	if err != nil {
		fatal(err)
	}
	min := 16 * tx.DisplayFramesPerCycle()
	if nDisplay < min {
		nDisplay = min
	}
	fmt.Printf("sending %d bytes as %d packet(s) over %d display frames...\n",
		len(msg), tx.Packets(), nDisplay)
	res, err := inframe.Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		fatal(err)
	}
	rcfg := inframe.DefaultReceiverConfig(p, cfg.Camera.W, cfg.Camera.H)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rx, err := inframe.NewMessageReceiver(rcfg)
	if err != nil {
		fatal(err)
	}
	fresh := rx.Ingest(res, nDisplay/p.Tau)
	fmt.Printf("accepted %d packet(s)\n", fresh)
	if !rx.Complete() {
		fmt.Printf("message incomplete; missing packets %v\n", rx.Missing())
		os.Exit(1)
	}
	got, err := rx.Message()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("received: %q\n", got)
}

func pickVideo(name string, l inframe.Layout, seed int64) (inframe.VideoSource, error) {
	switch name {
	case "gray":
		return inframe.GrayVideo(l.FrameW, l.FrameH), nil
	case "darkgray":
		return inframe.DarkGrayVideo(l.FrameW, l.FrameH), nil
	case "sunrise":
		return inframe.SunRiseVideo(l.FrameW, l.FrameH, seed), nil
	case "textcard":
		return inframe.TextCardVideo(l.FrameW, l.FrameH, seed), nil
	case "bars":
		return inframe.MovingBarsVideo(l.FrameW, l.FrameH, l.BlockPx(), 2), nil
	default:
		return nil, fmt.Errorf("unknown video %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inframe-sim:", err)
	os.Exit(1)
}
