// Command inframe-sim runs one end-to-end InFrame transmission through the
// simulated display→camera channel and reports the secondary channel's
// performance, optionally also sending a real text message.
//
// Usage:
//
//	inframe-sim [-video gray|darkgray|sunrise|textcard|bars] [-delta 20]
//	            [-tau 12] [-seconds 2.0] [-scale 2] [-seed 1]
//	            [-camera-start 0] [-workers 0] [-message "text to send"]
//	            [-report]
//	            [-impair-seed 1] [-drift-ppm 0] [-jitter 0] [-drop 0]
//	            [-dup 0] [-ambient-ramp 0] [-flicker-amp 0] [-flicker-hz 100]
//	            [-gain-amp 0] [-gain-hz 0.7] [-burst-rate 0] [-burst-sigma 0]
//	            [-motion-blur 0] [-occlude "x,y,w,h"] [-occlude-level 0]
//
// The -impair-* family injects seeded, deterministic channel faults (see
// internal/impair); -report prints the receiver's graceful-degradation
// accounting (erasure causes, gaps, resyncs, link-quality timeline summary).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"inframe"
	"inframe/internal/channel"
	"inframe/internal/impair"
	"inframe/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, simulates, prints to stdout
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inframe-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	videoName := fs.String("video", "gray", "video content: gray, darkgray, sunrise, textcard, bars")
	delta := fs.Float64("delta", 20, "chessboard amplitude δ")
	tau := fs.Int("tau", 12, "smoothing cycle τ (display frames per data frame, even)")
	seconds := fs.Float64("seconds", 2.0, "simulated transmission length")
	scale := fs.Int("scale", 2, "paper-geometry divisor")
	seed := fs.Int64("seed", 1, "random seed")
	cameraStart := fs.Float64("camera-start", 0, "camera clock offset vs the display (seconds, may be negative)")
	workers := fs.Int("workers", 0, "worker pool bound (0 = GOMAXPROCS; results identical at any value)")
	message := fs.String("message", "", "optional text message to transmit instead of random data")
	report := fs.Bool("report", false, "print the receiver's graceful-degradation report")

	impairSeed := fs.Int64("impair-seed", 1, "impairment randomness seed")
	driftPPM := fs.Float64("drift-ppm", 0, "camera clock drift in parts per million")
	jitter := fs.Float64("jitter", 0, "per-exposure start jitter bound (seconds)")
	drop := fs.Float64("drop", 0, "capture drop probability [0,1)")
	dup := fs.Float64("dup", 0, "capture duplication probability [0,1)")
	ambientRamp := fs.Float64("ambient-ramp", 0, "ambient light ramp (gray levels per second)")
	flickerAmp := fs.Float64("flicker-amp", 0, "mains flicker amplitude (gray levels)")
	flickerHz := fs.Float64("flicker-hz", 100, "mains flicker frequency (100 = 50 Hz mains)")
	gainAmp := fs.Float64("gain-amp", 0, "auto-exposure gain drift amplitude (fraction)")
	gainHz := fs.Float64("gain-hz", 0.7, "gain drift frequency (Hz)")
	burstRate := fs.Float64("burst-rate", 0, "sensor noise-burst probability per capture [0,1)")
	burstSigma := fs.Float64("burst-sigma", 0, "noise-burst sigma (gray levels)")
	motionBlur := fs.Int("motion-blur", 0, "horizontal motion blur length (pixels)")
	occlude := fs.String("occlude", "", "partial occlusion rect as x,y,w,h (frame fractions)")
	occludeLevel := fs.Float64("occlude-level", 0, "occluder gray level [0,255]")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	imp := &inframe.ImpairConfig{
		Seed: *impairSeed, ClockDriftPPM: *driftPPM, StartJitter: *jitter,
		DropRate: *drop, DupRate: *dup, AmbientRamp: *ambientRamp,
		FlickerAmp: *flickerAmp, FlickerHz: *flickerHz,
		GainAmp: *gainAmp, GainHz: *gainHz,
		BurstRate: *burstRate, BurstSigma: *burstSigma,
		MotionBlurLen: *motionBlur, OccludeLevel: *occludeLevel,
	}
	if *occlude != "" {
		if n, err := fmt.Sscanf(strings.ReplaceAll(*occlude, ",", " "), "%f %f %f %f",
			&imp.OccludeX, &imp.OccludeY, &imp.OccludeW, &imp.OccludeH); n != 4 || err != nil {
			fmt.Fprintln(stderr, "inframe-sim: -occlude wants x,y,w,h fractions")
			return 2
		}
	}

	l, err := inframe.ScaledPaperLayout(*scale)
	if err != nil {
		return fatal(stderr, err)
	}
	p := inframe.DefaultParams(l)
	p.Delta = *delta
	p.Tau = *tau
	p.Workers = *workers
	if err := p.Validate(); err != nil {
		return fatal(stderr, err)
	}
	src, err := pickVideo(*videoName, l, *seed)
	if err != nil {
		return fatal(stderr, err)
	}
	capW, capH := 1280 / *scale, 720 / *scale
	cfg := channel.DefaultConfig(capW, capH)
	cfg.Camera.BlurRadius = 0
	cfg.Camera.Seed = *seed
	cfg.Camera.Workers = *workers
	cfg.CameraStart = *cameraStart
	cfg.Workers = *workers
	if imp.Enabled() {
		if err := imp.Validate(); err != nil {
			return fatal(stderr, err)
		}
		cfg.Impair = imp
		fmt.Fprintf(stdout, "impairments: %s\n", strings.Join(impairNames(imp), ", "))
	}
	nDisplay := int(*seconds * cfg.Display.RefreshHz)

	if *message != "" {
		return runMessage(stdout, stderr, p, src, cfg, *message, nDisplay)
	}

	stream := inframe.NewRandomStream(l, *seed)
	m, err := inframe.NewMultiplexer(p, src, stream)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "transmitting %.1fs of %s at δ=%.0f τ=%d over a %dx%d display → %dx%d camera...\n",
		*seconds, *videoName, *delta, *tau, l.FrameW, l.FrameH, capW, capH)
	res, err := inframe.Simulate(m, nDisplay, cfg)
	if err != nil {
		return fatal(stderr, err)
	}
	rcfg := inframe.DefaultReceiverConfig(p, capW, capH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = *workers
	if cfg.Impair != nil {
		// Graceful degradation: gate garbage captures out of aggregation.
		rcfg.MinCaptureQuality = 0.1
	}
	rcv, err := inframe.NewReceiver(rcfg)
	if err != nil {
		return fatal(stderr, err)
	}
	decoded, rep := rcv.DecodeCapturesReport(res.Captures, res.Times, res.Exposure, nDisplay / *tau)
	var stats metrics.GOBStats
	for d, fd := range decoded {
		if fd.Captures == 0 {
			continue
		}
		stats.AddWithOracle(fd, stream.DataFrame(d))
	}
	perf := inframe.ComputeReport(&stats, l, *tau, cfg.Display.RefreshHz)
	fmt.Fprintf(stdout, "captures: %d, data frames decoded: %d\n", len(res.Captures), stats.Frames)
	fmt.Fprintln(stdout, perf)
	if *report {
		writeReport(stdout, rep)
	}
	return 0
}

// writeReport prints the graceful-degradation accounting of one decode.
func writeReport(w io.Writer, rep *inframe.DecodeReport) {
	var deg inframe.DegradationStats
	deg.AddReport(rep)
	fmt.Fprintln(w, deg.String())
	counts := rep.CauseCounts()
	fmt.Fprint(w, "erasure causes:")
	for c, n := range counts {
		fmt.Fprintf(w, " %s=%d", inframe.ErasureCause(c), n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "link quality: mean=%.3f min=%.3f over %d scored captures\n",
		rep.MeanQuality(), rep.MinQuality(), scoredCaptures(rep))
}

func scoredCaptures(rep *inframe.DecodeReport) int {
	n := 0
	for _, q := range rep.Quality {
		if q.Scored {
			n++
		}
	}
	return n
}

// impairNames returns the enabled impairment stages in canonical order.
func impairNames(imp *inframe.ImpairConfig) []string {
	return impair.New(*imp).Names()
}

func runMessage(stdout, stderr io.Writer, p inframe.Params, src inframe.VideoSource, cfg inframe.ChannelConfig, msg string, nDisplay int) int {
	tx, err := inframe.NewTransmitter(p, src, []byte(msg))
	if err != nil {
		return fatal(stderr, err)
	}
	min := 16 * tx.DisplayFramesPerCycle()
	if nDisplay < min {
		nDisplay = min
	}
	fmt.Fprintf(stdout, "sending %d bytes as %d packet(s) over %d display frames...\n",
		len(msg), tx.Packets(), nDisplay)
	res, err := inframe.Simulate(tx.Multiplexer(), nDisplay, cfg)
	if err != nil {
		return fatal(stderr, err)
	}
	rcfg := inframe.DefaultReceiverConfig(p, cfg.Camera.W, cfg.Camera.H)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = cfg.Workers
	rx, err := inframe.NewMessageReceiver(rcfg)
	if err != nil {
		return fatal(stderr, err)
	}
	fresh := rx.Ingest(res, nDisplay/p.Tau)
	fmt.Fprintf(stdout, "accepted %d packet(s)\n", fresh)
	if !rx.Complete() {
		fmt.Fprintf(stdout, "message incomplete; missing packets %v\n", rx.Missing())
		return 1
	}
	got, err := rx.Message()
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "received: %q\n", got)
	return 0
}

func pickVideo(name string, l inframe.Layout, seed int64) (inframe.VideoSource, error) {
	switch name {
	case "gray":
		return inframe.GrayVideo(l.FrameW, l.FrameH), nil
	case "darkgray":
		return inframe.DarkGrayVideo(l.FrameW, l.FrameH), nil
	case "sunrise":
		return inframe.SunRiseVideo(l.FrameW, l.FrameH, seed), nil
	case "textcard":
		return inframe.TextCardVideo(l.FrameW, l.FrameH, seed), nil
	case "bars":
		return inframe.MovingBarsVideo(l.FrameW, l.FrameH, l.BlockPx(), 2), nil
	default:
		return nil, fmt.Errorf("unknown video %q", name)
	}
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "inframe-sim:", err)
	return 1
}
