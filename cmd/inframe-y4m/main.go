// Command inframe-y4m bridges InFrame and standard video tooling through
// the YUV4MPEG2 format: "render" produces a multiplexed color .y4m any
// player can show at 120 FPS; "decode" recovers the embedded message from a
// .y4m capture (e.g. re-exported camera footage).
//
// Usage:
//
//	inframe-y4m render -out multiplexed.y4m [-message "hi"] [-video colorsunrise]
//	inframe-y4m decode -in multiplexed.y4m
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"inframe"
	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/video"
	"inframe/internal/y4m"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "render":
		render(os.Args[2:])
	case "decode":
		decode(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: inframe-y4m render|decode [flags]")
	os.Exit(2)
}

func render(args []string) {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	out := fs.String("out", "multiplexed.y4m", "output .y4m path")
	message := fs.String("message", "hello from a .y4m file", "message to embed")
	videoName := fs.String("video", "colorsunrise", "content: colorsunrise, gray, textcard")
	scale := fs.Int("scale", 2, "paper-geometry divisor")
	tau := fs.Int("tau", 12, "smoothing cycle")
	cycles := fs.Int("cycles", 16, "message repetitions")
	seed := fs.Int64("seed", 1, "random seed")
	parity := fs.Int("parity", 0, "RS parity bytes per frame (0 = default ~25%; raise for saturated/moving content)")
	fs.Parse(args)

	l, err := inframe.ScaledPaperLayout(*scale)
	fatalIf(err)
	p := inframe.DefaultParams(l)
	p.Tau = *tau
	parityBytes := *parity
	if parityBytes == 0 {
		parityBytes = l.DataBitsPerFrame() / 8 / 4
	}

	var src video.RGBSource
	switch *videoName {
	case "colorsunrise":
		src = video.NewColorSunRise(l.FrameW, l.FrameH, *seed)
	case "gray":
		src = video.Colorize{Src: video.Gray(l.FrameW, l.FrameH)}
	case "textcard":
		src = video.Colorize{Src: video.NewTextCard(l.FrameW, l.FrameH, *seed)}
	default:
		fatalIf(fmt.Errorf("unknown video %q", *videoName))
	}

	// Build the data stream the way the facade Transmitter does, but render
	// in color.
	tx, err := inframe.NewTransmitterParity(p, video.Luma{Src: src}, []byte(*message), parityBytes)
	fatalIf(err)
	cm, err := core.NewRGBMultiplexer(p, src, tx.Stream())
	fatalIf(err)

	fh, err := os.Create(*out)
	fatalIf(err)
	defer fh.Close()
	wr, err := y4m.NewWriter(fh, y4m.Header{
		W: l.FrameW, H: l.FrameH, FPSNum: 120, FPSDen: 1, ColorSpace: y4m.C420,
	})
	fatalIf(err)
	n := *cycles * tx.DisplayFramesPerCycle()
	for k := 0; k < n; k++ {
		f, err := cm.FrameRGB(k)
		fatalIf(err)
		fatalIf(wr.WriteFrame(f))
	}
	fatalIf(wr.Flush())
	fatalIf(fh.Close())
	fmt.Printf("wrote %d color frames (%d packets × %d cycles) to %s\n",
		n, tx.Packets(), *cycles, *out)
}

func decode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "multiplexed.y4m", "input .y4m path")
	scale := fs.Int("scale", 2, "paper-geometry divisor")
	tau := fs.Int("tau", 12, "smoothing cycle")
	parity := fs.Int("parity", 0, "RS parity bytes per frame (must match render)")
	fs.Parse(args)

	l, err := inframe.ScaledPaperLayout(*scale)
	fatalIf(err)
	p := inframe.DefaultParams(l)
	p.Tau = *tau
	parityBytes := *parity
	if parityBytes == 0 {
		parityBytes = l.DataBitsPerFrame() / 8 / 4
	}

	fh, err := os.Open(*in)
	fatalIf(err)
	defer fh.Close()
	rd, err := y4m.NewReader(fh)
	fatalIf(err)
	if rd.Header.W != l.FrameW || rd.Header.H != l.FrameH {
		fatalIf(fmt.Errorf("stream is %dx%d, layout expects %dx%d",
			rd.Header.W, rd.Header.H, l.FrameW, l.FrameH))
	}
	var caps []*frame.Frame
	var times []float64
	fps := rd.Header.FPS()
	for i := 0; ; i++ {
		y, _, _, err := rd.ReadFrameYCbCr()
		if errors.Is(err, y4m.ErrNoMoreFrames) {
			break
		}
		fatalIf(err)
		caps = append(caps, y)
		times = append(times, float64(i)/fps)
	}
	if len(caps) == 0 {
		fatalIf(fmt.Errorf("no frames in %s", *in))
	}
	rcfg := inframe.DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	rx, err := inframe.NewMessageReceiverParity(rcfg, parityBytes)
	fatalIf(err)
	nData := int(times[len(times)-1] / (float64(*tau) / 120))
	rx.Ingest(&inframe.ChannelResult{Captures: caps, Times: times, Exposure: 1 / fps}, nData)
	if !rx.Complete() {
		fatalIf(fmt.Errorf("message incomplete; missing packets %v", rx.Missing()))
	}
	msg, err := rx.Message()
	fatalIf(err)
	fmt.Printf("decoded %d bytes: %q\n", len(msg), msg)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inframe-y4m:", err)
		os.Exit(1)
	}
}
