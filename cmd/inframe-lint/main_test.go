package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"inframe/internal/analysis"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		args []string
		want config
	}{
		{nil, config{format: "text", dir: "."}},
		{[]string{"./..."}, config{format: "text", dir: "."}},
		{[]string{"-list"}, config{list: true, format: "text", dir: "."}},
		{[]string{"--list"}, config{list: true, format: "text", dir: "."}},
		{[]string{"-only", "poolown"}, config{only: "poolown", format: "text", dir: "."}},
		{[]string{"-only=poolown,stagekey"}, config{only: "poolown,stagekey", format: "text", dir: "."}},
		{[]string{"-format", "json", "./..."}, config{format: "json", dir: "."}},
		{[]string{"--format=json"}, config{format: "json", dir: "."}},
		{[]string{"-format=sarif"}, config{format: "sarif", dir: "."}},
		{[]string{"-timings", "./..."}, config{format: "text", dir: ".", timings: true}},
	}
	for _, c := range cases {
		if got := parseArgs(c.args); got != c.want {
			t.Errorf("parseArgs(%q) = %+v, want %+v", c.args, got, c.want)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil {
		t.Fatalf("empty -only: %v", err)
	}
	if len(all) != len(analysis.DefaultAnalyzers()) {
		t.Errorf("empty -only selected %d analyzers, want the full registry", len(all))
	}
	subset, err := selectAnalyzers("poolown, stagekey")
	if err != nil {
		t.Fatalf("subset: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "poolown" || subset[1].Name != "stagekey" {
		t.Errorf("subset = %v", subset)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
	if _, err := selectAnalyzers(","); err == nil {
		t.Error("empty selection did not error")
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{list: true, format: "text", dir: "."}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if want := len(analysis.DefaultAnalyzers()); len(lines) != want {
		t.Errorf("-list printed %d analyzers, want %d", len(lines), want)
	}
	for _, name := range []string{"poolown", "stagekey", "splitbudget"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestRunListOnly(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{list: true, only: "poolown", format: "text", dir: "."}, &out, &errOut); code != 0 {
		t.Fatalf("-list -only exited %d: %s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); !strings.HasPrefix(got, "poolown") || strings.Contains(got, "\n") {
		t.Errorf("-list -only poolown printed %q, want the one analyzer", got)
	}
}

func TestRunBadUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{format: "yaml", dir: "."}, &out, &errOut); code != 2 {
		t.Errorf("bad -format exited %d, want 2", code)
	}
	if code := run(config{only: "nosuch", format: "text", dir: "."}, &out, &errOut); code != 2 {
		t.Errorf("unknown -only exited %d, want 2", code)
	}
}

// TestRunModuleJSON runs the real module through -format json and pins
// the report shape: full registry, a count entry per analyzer (zeros
// included), empty findings, exit 0.
func TestRunModuleJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check in -short mode")
	}
	var out, errOut strings.Builder
	if code := run(config{format: "json", dir: "."}, &out, &errOut); code != 0 {
		t.Fatalf("module lint exited %d: %s%s", code, out.String(), errOut.String())
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	want := len(analysis.DefaultAnalyzers())
	if len(report.Registry) != want {
		t.Errorf("registry has %d entries, want %d", len(report.Registry), want)
	}
	if len(report.Counts) != want {
		t.Errorf("counts has %d entries, want %d (zero entries included)", len(report.Counts), want)
	}
	for name, n := range report.Counts {
		if n != 0 {
			t.Errorf("analyzer %s reports %d findings on a clean tree", name, n)
		}
	}
	if len(report.Findings) != 0 {
		t.Errorf("clean tree produced findings: %v", report.Findings)
	}
}

// TestWriteSARIF pins the SARIF 2.1.0 shape without a module load: one
// run, a rule per analyzer, module-relative URIs, and a non-nil results
// array even when empty.
func TestWriteSARIF(t *testing.T) {
	analyzers := analysis.DefaultAnalyzers()
	diags := []analysis.Diagnostic{{
		Pos:      token.Position{Filename: "/mod/internal/core/mux.go", Line: 12, Column: 3},
		Analyzer: "poolown",
		Message:  "frame leaked",
	}}
	var out strings.Builder
	if err := writeSARIF(&out, "/mod", analyzers, diags); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if got, want := len(run.Tool.Driver.Rules), len(analyzers); got != want {
		t.Errorf("rules = %d, want %d", got, want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "poolown" || r.Level != "error" || r.Message.Text != "frame leaked" {
		t.Errorf("result = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/mux.go" {
		t.Errorf("uri = %q, want module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v", loc.Region)
	}

	// An empty diagnostic set must still serialize "results": [] — SARIF
	// consumers reject a null results array.
	out.Reset()
	if err := writeSARIF(&out, "/mod", analyzers, nil); err != nil {
		t.Fatalf("writeSARIF(empty): %v", err)
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Error("empty findings did not serialize as an empty results array")
	}
}

// TestRunModuleSARIF runs the real module through -format sarif with
// -timings: a clean tree yields an empty results array on stdout and a
// per-analyzer timing table (with the summaries row) on stderr.
func TestRunModuleSARIF(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check in -short mode")
	}
	var out, errOut strings.Builder
	if code := run(config{format: "sarif", dir: ".", timings: true}, &out, &errOut); code != 0 {
		t.Fatalf("module lint exited %d: %s%s", code, out.String(), errOut.String())
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean tree produced SARIF results: %+v", log.Runs)
	}
	for _, want := range []string{"timing summaries", "timing intrange", "timing total"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("timing output missing %q:\n%s", want, errOut.String())
		}
	}
}

// TestRunModuleOnly pins that a subset run works end to end: one
// analyzer in the registry, zero findings, exit 0.
func TestRunModuleOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check in -short mode")
	}
	var out, errOut strings.Builder
	if code := run(config{only: "splitbudget", format: "json", dir: "."}, &out, &errOut); code != 0 {
		t.Fatalf("-only splitbudget exited %d: %s%s", code, out.String(), errOut.String())
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(report.Registry) != 1 || report.Registry[0] != "splitbudget" {
		t.Errorf("registry = %v, want [splitbudget]", report.Registry)
	}
}
