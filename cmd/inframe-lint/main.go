// Command inframe-lint runs the repository's custom static-analysis suite
// (internal/analysis): a registry of analyzers that enforce the pipeline's
// determinism, ownership, clamp, concurrency and hot-loop performance
// invariants across every non-test package of the module.
//
// Usage:
//
//	inframe-lint [-list] [-only name[,name...]] [-format text|json|sarif] [-timings] [packages]
//
// The package pattern is accepted for familiarity (verify.sh invokes
// `inframe-lint ./...`) but the tool always loads and checks the whole
// module — the invariants are global, and partial runs would let a
// violation hide in an unchecked package.
//
// -only restricts the run to a comma-separated subset of the registry
// (use -list for the names); directives naming analyzers outside the
// subset are neither unknown nor stale in such a run. Whatever the
// subset, diagnostics come from the same module-wide summary fixpoint
// as a full run, so a subset's findings are always a slice of the full
// run's.
//
// -format json emits a {registry, counts, findings} object on stdout:
// the analyzer registry that ran, per-analyzer finding counts (zero
// entries included, so CI trend lines never lose a series), and the
// findings as {analyzer, file, line, message} records. The default text
// output and the exit codes are unchanged.
//
// -format sarif emits a SARIF 2.1.0 log on stdout — one run, one rule
// per registered analyzer, one result per finding with module-relative
// file URIs — for upload to code-scanning services.
//
// -timings prints a per-analyzer wall-clock attribution table on
// stderr after the run (the shared summary fixpoint appears as its own
// "summaries" row), composing with any -format on stdout.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check or
// usage failure. Suppress a single finding with a trailing or preceding
// comment:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive that no longer suppresses anything is itself reported.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"inframe/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// jsonReport is the -format json output: the registry that ran, the
// per-analyzer finding counts (zeros included), and the findings.
type jsonReport struct {
	Registry []string       `json:"registry"`
	Counts   map[string]int `json:"counts"`
	Findings []jsonFinding  `json:"findings"`
}

// sarifLog is a minimal SARIF 2.1.0 document: one run of one tool.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// config is one parsed invocation.
type config struct {
	list    bool
	only    string
	format  string
	dir     string
	timings bool
}

func main() {
	os.Exit(run(parseArgs(os.Args[1:]), os.Stdout, os.Stderr))
}

// parseArgs parses flags without the global flag set so run stays
// testable; unknown flags surface through config validation in run.
func parseArgs(args []string) config {
	cfg := config{format: "text", dir: "."}
	i := 0
	next := func() string {
		if i+1 < len(args) {
			i++
			return args[i]
		}
		return ""
	}
	for ; i < len(args); i++ {
		arg := strings.TrimPrefix(args[i], "-")
		arg = strings.TrimPrefix(arg, "-")
		switch {
		case args[i] == arg:
			// Package patterns (./...) are accepted and ignored: the tool
			// always checks the whole module.
		case arg == "list":
			cfg.list = true
		case arg == "only":
			cfg.only = next()
		case strings.HasPrefix(arg, "only="):
			cfg.only = strings.TrimPrefix(arg, "only=")
		case arg == "format":
			cfg.format = next()
		case strings.HasPrefix(arg, "format="):
			cfg.format = strings.TrimPrefix(arg, "format=")
		case arg == "timings":
			cfg.timings = true
		}
	}
	return cfg
}

// run executes one lint invocation and returns the process exit code.
func run(cfg config, stdout, stderr io.Writer) int {
	if cfg.format != "text" && cfg.format != "json" && cfg.format != "sarif" {
		fmt.Fprintf(stderr, "inframe-lint: unknown format %q (use text, json or sarif)\n", cfg.format)
		return 2
	}

	analyzers, err := selectAnalyzers(cfg.only)
	if err != nil {
		fmt.Fprintln(stderr, "inframe-lint:", err)
		return 2
	}

	if cfg.list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := analysis.LoadModule(cfg.dir)
	if err != nil {
		fmt.Fprintln(stderr, "inframe-lint:", err)
		return 2
	}
	var diags []analysis.Diagnostic
	if cfg.timings {
		var timings []analysis.AnalyzerTiming
		diags, timings = analysis.RunTimed(mod, analyzers, time.Now)
		var total time.Duration
		for _, tm := range timings {
			fmt.Fprintf(stderr, "inframe-lint: timing %-14s %8.1fms\n", tm.Name, float64(tm.Elapsed)/1e6)
			total += tm.Elapsed
		}
		fmt.Fprintf(stderr, "inframe-lint: timing %-14s %8.1fms\n", "total", float64(total)/1e6)
	} else {
		diags = analysis.Run(mod, analyzers)
	}

	switch cfg.format {
	case "sarif":
		if err := writeSARIF(stdout, mod.Root, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "inframe-lint:", err)
			return 2
		}
	case "json":
		report := jsonReport{
			Registry: make([]string, 0, len(analyzers)),
			Counts:   make(map[string]int, len(analyzers)+1),
			Findings: make([]jsonFinding, 0, len(diags)),
		}
		for _, a := range analyzers {
			report.Registry = append(report.Registry, a.Name)
			report.Counts[a.Name] = 0
		}
		for _, d := range diags {
			report.Counts[d.Analyzer]++
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "inframe-lint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "inframe-lint: %d finding(s) across %d analyzer(s)\n", len(diags), len(analyzers))
		return 1
	}
	return 0
}

// writeSARIF renders the findings as a SARIF 2.1.0 log: one run, one
// rule per registered analyzer, one result per diagnostic. File URIs
// are module-relative (uriBaseId SRCROOT) so the log uploads cleanly
// from any checkout location.
func writeSARIF(w io.Writer, root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	driver := sarifDriver{
		Name:  "inframe-lint",
		Rules: make([]sarifRule, 0, len(analyzers)),
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// selectAnalyzers resolves -only against the registry; an empty spec
// selects everything.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.DefaultAnalyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("-only names unknown analyzer %q (use -list for the registry)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
