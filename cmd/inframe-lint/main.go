// Command inframe-lint runs the repository's custom static-analysis suite
// (internal/analysis): a registry of analyzers that enforce the pipeline's
// determinism, ownership, clamp, concurrency and hot-loop performance
// invariants across every non-test package of the module.
//
// Usage:
//
//	inframe-lint [-list] [-only name[,name...]] [-format text|json] [packages]
//
// The package pattern is accepted for familiarity (verify.sh invokes
// `inframe-lint ./...`) but the tool always loads and checks the whole
// module — the invariants are global, and partial runs would let a
// violation hide in an unchecked package.
//
// -only restricts the run to a comma-separated subset of the registry
// (use -list for the names); directives naming analyzers outside the
// subset are neither unknown nor stale in such a run.
//
// -format json emits a {registry, counts, findings} object on stdout:
// the analyzer registry that ran, per-analyzer finding counts (zero
// entries included, so CI trend lines never lose a series), and the
// findings as {analyzer, file, line, message} records. The default text
// output and the exit codes are unchanged.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check or
// usage failure. Suppress a single finding with a trailing or preceding
// comment:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive that no longer suppresses anything is itself reported.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"inframe/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// jsonReport is the -format json output: the registry that ran, the
// per-analyzer finding counts (zeros included), and the findings.
type jsonReport struct {
	Registry []string       `json:"registry"`
	Counts   map[string]int `json:"counts"`
	Findings []jsonFinding  `json:"findings"`
}

// config is one parsed invocation.
type config struct {
	list   bool
	only   string
	format string
	dir    string
}

func main() {
	os.Exit(run(parseArgs(os.Args[1:]), os.Stdout, os.Stderr))
}

// parseArgs parses flags without the global flag set so run stays
// testable; unknown flags surface through config validation in run.
func parseArgs(args []string) config {
	cfg := config{format: "text", dir: "."}
	i := 0
	next := func() string {
		if i+1 < len(args) {
			i++
			return args[i]
		}
		return ""
	}
	for ; i < len(args); i++ {
		arg := strings.TrimPrefix(args[i], "-")
		arg = strings.TrimPrefix(arg, "-")
		switch {
		case args[i] == arg:
			// Package patterns (./...) are accepted and ignored: the tool
			// always checks the whole module.
		case arg == "list":
			cfg.list = true
		case arg == "only":
			cfg.only = next()
		case strings.HasPrefix(arg, "only="):
			cfg.only = strings.TrimPrefix(arg, "only=")
		case arg == "format":
			cfg.format = next()
		case strings.HasPrefix(arg, "format="):
			cfg.format = strings.TrimPrefix(arg, "format=")
		}
	}
	return cfg
}

// run executes one lint invocation and returns the process exit code.
func run(cfg config, stdout, stderr io.Writer) int {
	if cfg.format != "text" && cfg.format != "json" {
		fmt.Fprintf(stderr, "inframe-lint: unknown format %q (use text or json)\n", cfg.format)
		return 2
	}

	analyzers, err := selectAnalyzers(cfg.only)
	if err != nil {
		fmt.Fprintln(stderr, "inframe-lint:", err)
		return 2
	}

	if cfg.list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := analysis.LoadModule(cfg.dir)
	if err != nil {
		fmt.Fprintln(stderr, "inframe-lint:", err)
		return 2
	}
	diags := analysis.Run(mod, analyzers)

	if cfg.format == "json" {
		report := jsonReport{
			Registry: make([]string, 0, len(analyzers)),
			Counts:   make(map[string]int, len(analyzers)+1),
			Findings: make([]jsonFinding, 0, len(diags)),
		}
		for _, a := range analyzers {
			report.Registry = append(report.Registry, a.Name)
			report.Counts[a.Name] = 0
		}
		for _, d := range diags {
			report.Counts[d.Analyzer]++
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "inframe-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "inframe-lint: %d finding(s) across %d analyzer(s)\n", len(diags), len(analyzers))
		return 1
	}
	return 0
}

// selectAnalyzers resolves -only against the registry; an empty spec
// selects everything.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.DefaultAnalyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("-only names unknown analyzer %q (use -list for the registry)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
