// Command inframe-lint runs the repository's custom static-analysis suite
// (internal/analysis): a registry of analyzers that enforce the pipeline's
// determinism, clamp and concurrency invariants across every non-test
// package of the module.
//
// Usage:
//
//	inframe-lint [-list] [packages]
//
// The package pattern is accepted for familiarity (verify.sh invokes
// `inframe-lint ./...`) but the tool always loads and checks the whole
// module — the invariants are global, and partial runs would let a
// violation hide in an unchecked package.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure.
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"inframe/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "inframe-lint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(mod, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "inframe-lint: %d finding(s) across %d analyzer(s)\n", len(diags), len(analyzers))
		os.Exit(1)
	}
}
