// Command inframe-lint runs the repository's custom static-analysis suite
// (internal/analysis): a registry of analyzers that enforce the pipeline's
// determinism, clamp, concurrency and hot-loop performance invariants
// across every non-test package of the module.
//
// Usage:
//
//	inframe-lint [-list] [-format text|json] [packages]
//
// The package pattern is accepted for familiarity (verify.sh invokes
// `inframe-lint ./...`) but the tool always loads and checks the whole
// module — the invariants are global, and partial runs would let a
// violation hide in an unchecked package.
//
// -format json emits the findings as a JSON array of
// {analyzer, file, line, message} records on stdout (an empty array when
// clean) so CI can annotate pull requests; the default text output and the
// exit codes are unchanged.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure.
// Suppress a single finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"inframe/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	format := flag.String("format", "text", "output format: text or json")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "inframe-lint: unknown format %q (use text or json)\n", *format)
		os.Exit(2)
	}

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "inframe-lint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(mod, analyzers)
	if *format == "json" {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "inframe-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "inframe-lint: %d finding(s) across %d analyzer(s)\n", len(diags), len(analyzers))
		os.Exit(1)
	}
}
